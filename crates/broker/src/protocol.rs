//! Message types and codec for the client and broker protocols.
//!
//! Every frame on the wire is `[u32 LE payload length][payload]`; the
//! payload starts with a one-byte message tag. Events, predicates, and
//! subscriptions reuse the [`linkcast_types::wire`] codec.

use crate::counters::NodeCounters;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use linkcast::TreeId;
use linkcast_types::wire::FrameTag;
use linkcast_types::{
    wire, BrokerId, ClientId, Event, SchemaId, SchemaRegistry, Subscription, SubscriptionId,
};
use std::fmt;

/// Maximum accepted frame payload, bytes (a defense against corrupt length
/// prefixes).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Maximum payload length an encoder may emit. Same bound as [`MAX_FRAME`]
/// under a send-side name: a payload past this would truncate its `u32`
/// length prefix (or be dropped by every receiver), so encode entry points
/// reject it with [`ProtocolError::Oversized`] instead of desyncing the
/// stream.
pub const MAX_FRAME_LEN: usize = MAX_FRAME;

/// Maximum encoded *event body* accepted into routing. Tighter than
/// [`MAX_FRAME_LEN`] by a headroom margin because an accepted publish body
/// is re-stitched as a `Forward` frame (+21 bytes of routing header) and a
/// `Deliver` frame; the result must still fit every receiver's
/// [`MAX_FRAME`], or the oversized Forward would flap the link forever
/// (retransmit → reject → disconnect → resync → retransmit).
pub const MAX_EVENT_BODY: usize = MAX_FRAME - 64;

/// Checks an encoded event body against [`MAX_EVENT_BODY`].
///
/// Called at the API boundary (client publish, broker publish ingress)
/// so oversized events are rejected before they enter routing.
///
/// # Errors
///
/// [`ProtocolError::Oversized`] when `len` exceeds [`MAX_EVENT_BODY`].
pub fn check_event_body(len: usize) -> Result<(), ProtocolError> {
    if len > MAX_EVENT_BODY {
        return Err(ProtocolError::Oversized(len));
    }
    Ok(())
}

/// Errors from encoding or decoding protocol frames.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The payload failed to decode.
    Malformed(String),
    /// The frame length prefix exceeded [`MAX_FRAME`].
    Oversized(usize),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            ProtocolError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<linkcast_types::Error> for ProtocolError {
    fn from(e: linkcast_types::Error) -> Self {
        ProtocolError::Malformed(e.to_string())
    }
}

/// Messages a client sends to its broker.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientToBroker {
    /// Identify (and possibly resume) a session. `resume_from` is the last
    /// sequence number the client has safely received (0 for a fresh
    /// session); the broker redelivers everything after it.
    Hello {
        /// The pre-provisioned client identity.
        client: ClientId,
        /// Last sequence number already received.
        resume_from: u64,
    },
    /// Register a subscription: a predicate expression against the named
    /// information space, parsed by the broker's subscription manager.
    Subscribe {
        /// Information space to subscribe in.
        schema: SchemaId,
        /// Predicate expression, e.g. `issue = "IBM" & price < 120.00`.
        expression: String,
    },
    /// Remove a subscription.
    Unsubscribe {
        /// The subscription to remove.
        id: SubscriptionId,
    },
    /// Publish an event.
    Publish {
        /// The event (validated against its schema by the event parser).
        event: Event,
    },
    /// Acknowledge delivery of every event up to `seq`, allowing the
    /// broker's garbage collector to trim the client's log.
    Ack {
        /// Highest contiguously received sequence number.
        seq: u64,
    },
    /// Ask for the broker's counters (allowed before `Hello`; used by
    /// operational tooling).
    StatsRequest,
}

/// Messages a broker sends to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerToClient {
    /// Session accepted; deliveries resume after `resume_from`.
    Welcome {
        /// Echo of the client identity.
        client: ClientId,
        /// Sequence number deliveries resume after.
        resume_from: u64,
    },
    /// A matched event, with the client's log sequence number.
    Deliver {
        /// Per-client sequence number (contiguous from 1).
        seq: u64,
        /// The event.
        event: Event,
    },
    /// A subscription was registered.
    SubAck {
        /// The assigned subscription id.
        id: SubscriptionId,
    },
    /// A subscription was removed.
    UnsubAck {
        /// The removed subscription id.
        id: SubscriptionId,
    },
    /// A request failed.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// The broker's counters, answering a
    /// [`StatsRequest`](ClientToBroker::StatsRequest). The payload layout
    /// (registry order, `u64` LE words) comes from the `broker_counters!`
    /// registry in `crate::counters`.
    Stats(NodeCounters),
}

/// Messages brokers exchange.
///
/// Each broker–broker link is a reliable stateful channel: `Forward`
/// frames carry a per-link sequence number drawn from the sender's link
/// spool, the receiver acknowledges cumulatively with `FwdAck`, and the
/// `Hello` handshake exchanges both sides' high-water marks so a
/// reconnecting link retransmits exactly the unacknowledged suffix.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerToBroker {
    /// Identify a broker to its neighbor and resync the link. Sent by the
    /// dialing side on (re-)connect and answered in kind by the accepting
    /// side, so both directions of the link recover independently.
    Hello {
        /// The sending broker's id.
        broker: BrokerId,
        /// Nonce minted when the sending broker process started. A change
        /// between handshakes means the sender restarted: its `Forward`
        /// sequence space toward us is brand new, so our recorded
        /// high-water mark must be discarded, not compared. Comparing
        /// `send_seq` alone misses the restart once the fresh stream's
        /// sequence has caught up to (or passed) the old one — the
        /// receiver would then dedup-drop or ack-trim live frames.
        incarnation: u64,
        /// Highest `Forward` sequence number the sender has received *from*
        /// this neighbor — the neighbor trims its spool through this and
        /// retransmits everything after it.
        last_recv: u64,
        /// The neighbor incarnation `last_recv` was observed under. If it
        /// is not the receiver's *current* incarnation, `last_recv` counts
        /// a dead sequence space and must be treated as 0 (retransmit the
        /// whole spool; the peer's reset dedup window absorbs it).
        last_recv_incarnation: u64,
        /// Highest `Forward` sequence number the sender has ever assigned
        /// *toward* this neighbor. A value below the receiver's recorded
        /// high-water mark means the sender restarted and lost its spool;
        /// the receiver resets its dedup window so the fresh stream is not
        /// mistaken for duplicates (redundant with `incarnation` but kept
        /// as an independent guard).
        send_seq: u64,
    },
    /// An event in flight along a spanning tree.
    Forward {
        /// The spanning tree the event follows.
        tree: TreeId,
        /// Per-link sequence number (contiguous from 1 per neighbor pair,
        /// modulo spool-overflow gaps). The receiver drops sequence numbers
        /// at or below its high-water mark as retransmission duplicates.
        seq: u64,
        /// The sender's topology epoch when the frame was spooled. A
        /// receiver at a different epoch drops the frame *without* acking
        /// it or advancing its dedup window — the sender's epoch-flip
        /// sweep re-homes the still-spooled frame down the repaired tree,
        /// so a stale-epoch drop can never lose an event.
        epoch: u64,
        /// The event.
        event: Event,
    },
    /// Cumulative acknowledgment of `Forward` frames received on this
    /// link; the sender trims its spool through `seq`.
    FwdAck {
        /// Highest received per-link sequence number.
        seq: u64,
    },
    /// Flooded subscription registration (control plane).
    SubAdd {
        /// Information space of the subscription.
        schema: SchemaId,
        /// The subscription.
        subscription: Subscription,
        /// Whether this is anti-entropy resync traffic (replayed on link
        /// establishment) rather than a fresh registration. Resynced adds
        /// are filtered against the receiver's tombstone set so removals
        /// that flooded while the link was down stay removed; fresh adds
        /// instead clear a matching tombstone (id recycling).
        resync: bool,
    },
    /// Flooded subscription removal.
    SubRemove {
        /// The subscription to remove.
        id: SubscriptionId,
    },
    /// Liveness probe. Sent on a link with no received traffic for a
    /// heartbeat interval; the peer answers with [`Pong`](Self::Pong).
    /// Carries no state — any frame arrival refreshes the receiver's
    /// liveness clock, a `Ping` merely guarantees there is one.
    Ping,
    /// Liveness probe answer. Like `Ping`, its only payload is its
    /// arrival.
    Pong,
    /// Flooded link-state statement: the broker-broker edge `(a, b)` is
    /// down. Endpoints are normalized (`a < b`); `ver` is the per-edge
    /// statement version. A receiver applies the statement iff it is newer
    /// than its recorded state for the edge, recomputes the spanning
    /// forest over the surviving graph (bumping its topology epoch), and
    /// re-floods to every neighbor except the one it heard from.
    LinkDown {
        /// Lower-numbered endpoint of the edge.
        a: BrokerId,
        /// Higher-numbered endpoint of the edge.
        b: BrokerId,
        /// Per-edge statement version (monotone; dedups the flood).
        ver: u64,
    },
    /// Flooded link-state statement: the broker-broker edge `(a, b)` is
    /// live again. Same normalization, versioning, and apply-if-newer
    /// semantics as [`LinkDown`](Self::LinkDown).
    LinkUp {
        /// Lower-numbered endpoint of the edge.
        a: BrokerId,
        /// Higher-numbered endpoint of the edge.
        b: BrokerId,
        /// Per-edge statement version (monotone; dedups the flood).
        ver: u64,
    },
}

// Tag bytes are owned by `FrameTag` in `linkcast_types::wire` — the consts
// below only bind local names; `cargo xtask check` verifies that every
// variant is bound, encoded, and decoded here.
const C2B_HELLO: u8 = FrameTag::ClientHello as u8;
const C2B_SUBSCRIBE: u8 = FrameTag::Subscribe as u8;
const C2B_UNSUBSCRIBE: u8 = FrameTag::Unsubscribe as u8;
const C2B_PUBLISH: u8 = FrameTag::Publish as u8;
const C2B_ACK: u8 = FrameTag::Ack as u8;
const C2B_STATS: u8 = FrameTag::StatsRequest as u8;

const B2C_WELCOME: u8 = FrameTag::Welcome as u8;
const B2C_DELIVER: u8 = FrameTag::Deliver as u8;
const B2C_SUBACK: u8 = FrameTag::SubAck as u8;
const B2C_UNSUBACK: u8 = FrameTag::UnsubAck as u8;
const B2C_ERROR: u8 = FrameTag::Error as u8;
const B2C_STATS: u8 = FrameTag::Stats as u8;

const B2B_HELLO: u8 = FrameTag::BrokerHello as u8;
const B2B_FORWARD: u8 = FrameTag::Forward as u8;
const B2B_SUBADD: u8 = FrameTag::SubAdd as u8;
const B2B_SUBREMOVE: u8 = FrameTag::SubRemove as u8;
const B2B_FWDACK: u8 = FrameTag::FwdAck as u8;
const B2B_PING: u8 = FrameTag::Ping as u8;
const B2B_PONG: u8 = FrameTag::Pong as u8;
const B2B_LINKDOWN: u8 = FrameTag::LinkDown as u8;
const B2B_LINKUP: u8 = FrameTag::LinkUp as u8;

fn frame(payload: BytesMut) -> Bytes {
    let mut out = BytesMut::with_capacity(payload.len() + 4);
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    out.freeze()
}

/// Byte offset of the encoded event inside a `Publish` payload (tag byte).
pub(crate) const PUBLISH_BODY_OFFSET: usize = 1;
/// Byte offset of the encoded event inside a `Forward` payload (tag byte +
/// tree id + per-link sequence number + topology epoch).
pub(crate) const FORWARD_BODY_OFFSET: usize = 21;

/// Serializes an event body exactly once, for fan-out through the frame
/// stitchers below. The broker calls this only for events that did not
/// arrive over the wire; events that did are sliced straight out of the
/// incoming payload (see the `*_BODY_OFFSET` constants) and never
/// re-serialized.
pub(crate) fn encode_event_body(event: &Event) -> Bytes {
    let mut b = BytesMut::new();
    wire::put_event(&mut b, event);
    b.freeze()
}

/// Stitches a complete `Publish` frame around an already-encoded event body.
pub(crate) fn publish_frame(body: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(4 + PUBLISH_BODY_OFFSET + body.len());
    out.put_u32_le((PUBLISH_BODY_OFFSET + body.len()) as u32);
    out.put_u8(C2B_PUBLISH);
    out.extend_from_slice(body);
    out.freeze()
}

/// Stitches a complete `Forward` frame around an already-encoded event
/// body. The sequence number is per-link (each neighbor's spool assigns
/// its own), so every link gets its own header, but the body bytes are
/// never re-serialized.
pub(crate) fn forward_frame(tree: TreeId, seq: u64, epoch: u64, body: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(4 + FORWARD_BODY_OFFSET + body.len());
    out.put_u32_le((FORWARD_BODY_OFFSET + body.len()) as u32);
    out.put_u8(B2B_FORWARD);
    out.put_u32_le(tree.index() as u32);
    out.put_u64_le(seq);
    out.put_u64_le(epoch);
    out.extend_from_slice(body);
    out.freeze()
}

/// Stitches a complete `Deliver` frame around an already-encoded event body.
/// The sequence number is per-client, so each client gets its own header,
/// but the body bytes are never re-serialized.
pub(crate) fn deliver_frame(seq: u64, body: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(4 + 9 + body.len());
    out.put_u32_le((9 + body.len()) as u32);
    out.put_u8(B2C_DELIVER);
    out.put_u64_le(seq);
    out.extend_from_slice(body);
    out.freeze()
}

impl ClientToBroker {
    /// Encodes into a length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            ClientToBroker::Hello {
                client,
                resume_from,
            } => {
                b.put_u8(C2B_HELLO);
                b.put_u32_le(client.raw());
                b.put_u64_le(*resume_from);
            }
            ClientToBroker::Subscribe { schema, expression } => {
                b.put_u8(C2B_SUBSCRIBE);
                b.put_u32_le(schema.raw());
                wire::put_str(&mut b, expression);
            }
            ClientToBroker::Unsubscribe { id } => {
                b.put_u8(C2B_UNSUBSCRIBE);
                b.put_u32_le(id.raw());
            }
            ClientToBroker::Publish { event } => {
                b.put_u8(C2B_PUBLISH);
                wire::put_event(&mut b, event);
            }
            ClientToBroker::Ack { seq } => {
                b.put_u8(C2B_ACK);
                b.put_u64_le(*seq);
            }
            ClientToBroker::StatsRequest => {
                b.put_u8(C2B_STATS);
            }
        }
        frame(b)
    }

    /// Decodes a frame payload (without the length prefix).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation, unknown tags, or schema
    /// violations.
    pub fn decode(mut payload: Bytes, registry: &SchemaRegistry) -> Result<Self, ProtocolError> {
        let buf = &mut payload;
        if buf.remaining() < 1 {
            return Err(ProtocolError::Malformed("empty payload".into()));
        }
        match buf.get_u8() {
            C2B_HELLO => {
                if buf.remaining() < 12 {
                    return Err(ProtocolError::Malformed("short hello".into()));
                }
                Ok(ClientToBroker::Hello {
                    client: ClientId::new(buf.get_u32_le()),
                    resume_from: buf.get_u64_le(),
                })
            }
            C2B_SUBSCRIBE => {
                if buf.remaining() < 4 {
                    return Err(ProtocolError::Malformed("short subscribe".into()));
                }
                let schema = SchemaId::new(buf.get_u32_le());
                let expression = wire::get_str(buf)?;
                Ok(ClientToBroker::Subscribe { schema, expression })
            }
            C2B_UNSUBSCRIBE => {
                if buf.remaining() < 4 {
                    return Err(ProtocolError::Malformed("short unsubscribe".into()));
                }
                Ok(ClientToBroker::Unsubscribe {
                    id: SubscriptionId::new(buf.get_u32_le()),
                })
            }
            C2B_PUBLISH => Ok(ClientToBroker::Publish {
                event: wire::get_event(buf, registry)?,
            }),
            C2B_ACK => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::Malformed("short ack".into()));
                }
                Ok(ClientToBroker::Ack {
                    seq: buf.get_u64_le(),
                })
            }
            C2B_STATS => Ok(ClientToBroker::StatsRequest),
            tag => Err(ProtocolError::Malformed(format!(
                "unknown client message tag {tag:#x}"
            ))),
        }
    }
}

impl BrokerToClient {
    /// Encodes into a length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            BrokerToClient::Welcome {
                client,
                resume_from,
            } => {
                b.put_u8(B2C_WELCOME);
                b.put_u32_le(client.raw());
                b.put_u64_le(*resume_from);
            }
            BrokerToClient::Deliver { seq, event } => {
                b.put_u8(B2C_DELIVER);
                b.put_u64_le(*seq);
                wire::put_event(&mut b, event);
            }
            BrokerToClient::SubAck { id } => {
                b.put_u8(B2C_SUBACK);
                b.put_u32_le(id.raw());
            }
            BrokerToClient::UnsubAck { id } => {
                b.put_u8(B2C_UNSUBACK);
                b.put_u32_le(id.raw());
            }
            BrokerToClient::Error { message } => {
                b.put_u8(B2C_ERROR);
                wire::put_str(&mut b, message);
            }
            BrokerToClient::Stats(counters) => {
                b.put_u8(B2C_STATS);
                counters.encode_wire(&mut b);
            }
        }
        frame(b)
    }

    /// Decodes a frame payload (without the length prefix).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation, unknown tags, or schema
    /// violations.
    pub fn decode(mut payload: Bytes, registry: &SchemaRegistry) -> Result<Self, ProtocolError> {
        let buf = &mut payload;
        if buf.remaining() < 1 {
            return Err(ProtocolError::Malformed("empty payload".into()));
        }
        match buf.get_u8() {
            B2C_WELCOME => {
                if buf.remaining() < 12 {
                    return Err(ProtocolError::Malformed("short welcome".into()));
                }
                Ok(BrokerToClient::Welcome {
                    client: ClientId::new(buf.get_u32_le()),
                    resume_from: buf.get_u64_le(),
                })
            }
            B2C_DELIVER => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::Malformed("short deliver".into()));
                }
                let seq = buf.get_u64_le();
                let event = wire::get_event(buf, registry)?;
                Ok(BrokerToClient::Deliver { seq, event })
            }
            B2C_SUBACK => {
                if buf.remaining() < 4 {
                    return Err(ProtocolError::Malformed("short suback".into()));
                }
                Ok(BrokerToClient::SubAck {
                    id: SubscriptionId::new(buf.get_u32_le()),
                })
            }
            B2C_UNSUBACK => {
                if buf.remaining() < 4 {
                    return Err(ProtocolError::Malformed("short unsuback".into()));
                }
                Ok(BrokerToClient::UnsubAck {
                    id: SubscriptionId::new(buf.get_u32_le()),
                })
            }
            B2C_ERROR => Ok(BrokerToClient::Error {
                message: wire::get_str(buf)?,
            }),
            B2C_STATS => {
                // Forward-compatible prefix decoding: the Stats frame has
                // grown (64 → 72 → 104 → 128 bytes) as counters were added,
                // and will grow again. `NodeCounters::decode_wire` (macro-
                // generated from the counter registry) reads whatever whole
                // counters are present in registry order, defaults the rest
                // to 0, and ignores trailing counters newer than this
                // build. Only a ragged (non-multiple-of-8) payload is
                // malformed. The *encoder* stays exact-size so old decoders
                // keep working.
                if !buf.remaining().is_multiple_of(8) {
                    return Err(ProtocolError::Malformed("ragged stats payload".into()));
                }
                Ok(BrokerToClient::Stats(NodeCounters::decode_wire(buf)))
            }
            tag => Err(ProtocolError::Malformed(format!(
                "unknown broker-to-client tag {tag:#x}"
            ))),
        }
    }
}

impl BrokerToBroker {
    /// Encodes into a length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            BrokerToBroker::Hello {
                broker,
                incarnation,
                last_recv,
                last_recv_incarnation,
                send_seq,
            } => {
                b.put_u8(B2B_HELLO);
                b.put_u32_le(broker.raw());
                b.put_u64_le(*incarnation);
                b.put_u64_le(*last_recv);
                b.put_u64_le(*last_recv_incarnation);
                b.put_u64_le(*send_seq);
            }
            BrokerToBroker::Forward {
                tree,
                seq,
                epoch,
                event,
            } => {
                b.put_u8(B2B_FORWARD);
                b.put_u32_le(tree.index() as u32);
                b.put_u64_le(*seq);
                b.put_u64_le(*epoch);
                wire::put_event(&mut b, event);
            }
            BrokerToBroker::FwdAck { seq } => {
                b.put_u8(B2B_FWDACK);
                b.put_u64_le(*seq);
            }
            BrokerToBroker::SubAdd {
                schema,
                subscription,
                resync,
            } => {
                b.put_u8(B2B_SUBADD);
                b.put_u32_le(schema.raw());
                b.put_u8(u8::from(*resync));
                wire::put_subscription(&mut b, subscription);
            }
            BrokerToBroker::SubRemove { id } => {
                b.put_u8(B2B_SUBREMOVE);
                b.put_u32_le(id.raw());
            }
            BrokerToBroker::Ping => {
                b.put_u8(B2B_PING);
            }
            BrokerToBroker::Pong => {
                b.put_u8(B2B_PONG);
            }
            BrokerToBroker::LinkDown { a, b: bb, ver } => {
                b.put_u8(B2B_LINKDOWN);
                b.put_u32_le(a.raw());
                b.put_u32_le(bb.raw());
                b.put_u64_le(*ver);
            }
            BrokerToBroker::LinkUp { a, b: bb, ver } => {
                b.put_u8(B2B_LINKUP);
                b.put_u32_le(a.raw());
                b.put_u32_le(bb.raw());
                b.put_u64_le(*ver);
            }
        }
        frame(b)
    }

    /// Decodes a frame payload (without the length prefix).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation, unknown tags, or schema
    /// violations.
    pub fn decode(mut payload: Bytes, registry: &SchemaRegistry) -> Result<Self, ProtocolError> {
        let buf = &mut payload;
        if buf.remaining() < 1 {
            return Err(ProtocolError::Malformed("empty payload".into()));
        }
        match buf.get_u8() {
            B2B_HELLO => {
                if buf.remaining() < 36 {
                    return Err(ProtocolError::Malformed("short broker hello".into()));
                }
                Ok(BrokerToBroker::Hello {
                    broker: BrokerId::new(buf.get_u32_le()),
                    incarnation: buf.get_u64_le(),
                    last_recv: buf.get_u64_le(),
                    last_recv_incarnation: buf.get_u64_le(),
                    send_seq: buf.get_u64_le(),
                })
            }
            B2B_FORWARD => {
                if buf.remaining() < 20 {
                    return Err(ProtocolError::Malformed("short forward".into()));
                }
                let tree = tree_from_raw(buf.get_u32_le());
                let seq = buf.get_u64_le();
                let epoch = buf.get_u64_le();
                let event = wire::get_event(buf, registry)?;
                Ok(BrokerToBroker::Forward {
                    tree,
                    seq,
                    epoch,
                    event,
                })
            }
            B2B_FWDACK => {
                if buf.remaining() < 8 {
                    return Err(ProtocolError::Malformed("short fwdack".into()));
                }
                Ok(BrokerToBroker::FwdAck {
                    seq: buf.get_u64_le(),
                })
            }
            B2B_SUBADD => {
                if buf.remaining() < 5 {
                    return Err(ProtocolError::Malformed("short subadd".into()));
                }
                let schema_id = SchemaId::new(buf.get_u32_le());
                let resync = buf.get_u8() != 0;
                let schema = registry.get(schema_id).ok_or_else(|| {
                    ProtocolError::Malformed(format!("unknown schema {schema_id}"))
                })?;
                let subscription = wire::get_subscription(buf, schema)?;
                Ok(BrokerToBroker::SubAdd {
                    schema: schema_id,
                    subscription,
                    resync,
                })
            }
            B2B_SUBREMOVE => {
                if buf.remaining() < 4 {
                    return Err(ProtocolError::Malformed("short subremove".into()));
                }
                Ok(BrokerToBroker::SubRemove {
                    id: SubscriptionId::new(buf.get_u32_le()),
                })
            }
            B2B_PING => Ok(BrokerToBroker::Ping),
            B2B_PONG => Ok(BrokerToBroker::Pong),
            B2B_LINKDOWN => {
                if buf.remaining() < 16 {
                    return Err(ProtocolError::Malformed("short linkdown".into()));
                }
                Ok(BrokerToBroker::LinkDown {
                    a: BrokerId::new(buf.get_u32_le()),
                    b: BrokerId::new(buf.get_u32_le()),
                    ver: buf.get_u64_le(),
                })
            }
            B2B_LINKUP => {
                if buf.remaining() < 16 {
                    return Err(ProtocolError::Malformed("short linkup".into()));
                }
                Ok(BrokerToBroker::LinkUp {
                    a: BrokerId::new(buf.get_u32_le()),
                    b: BrokerId::new(buf.get_u32_le()),
                    ver: buf.get_u64_le(),
                })
            }
            tag => Err(ProtocolError::Malformed(format!(
                "unknown broker-to-broker tag {tag:#x}"
            ))),
        }
    }
}

/// Rebuilds a [`TreeId`] from its wire form. Tree ids are indices into the
/// shared spanning forest, which every broker derives identically from the
/// static topology.
pub(crate) fn tree_from_raw(raw: u32) -> TreeId {
    TreeId::from_index(raw as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkcast_types::{EventSchema, SubscriberId, Value, ValueKind};

    fn registry() -> SchemaRegistry {
        let mut r = SchemaRegistry::new();
        r.register(
            EventSchema::builder("trades")
                .attribute("issue", ValueKind::Str)
                .attribute("volume", ValueKind::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        r
    }

    fn strip(frame: Bytes) -> Bytes {
        assert!(frame.len() >= 4);
        let mut f = frame;
        let len = f.get_u32_le() as usize;
        assert_eq!(len, f.remaining());
        f
    }

    #[test]
    fn client_messages_roundtrip() {
        let reg = registry();
        let schema = reg.get(SchemaId::new(0)).unwrap();
        let event = Event::from_values(schema, [Value::str("IBM"), Value::Int(5)]).unwrap();
        let messages = [
            ClientToBroker::Hello {
                client: ClientId::new(3),
                resume_from: 42,
            },
            ClientToBroker::Subscribe {
                schema: SchemaId::new(0),
                expression: "volume > 100".into(),
            },
            ClientToBroker::Unsubscribe {
                id: SubscriptionId::new(9),
            },
            ClientToBroker::Publish { event },
            ClientToBroker::Ack { seq: 7 },
            ClientToBroker::StatsRequest,
        ];
        for m in messages {
            let back = ClientToBroker::decode(strip(m.encode()), &reg).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn broker_to_client_messages_roundtrip() {
        let reg = registry();
        let schema = reg.get(SchemaId::new(0)).unwrap();
        let event = Event::from_values(schema, [Value::str("HP"), Value::Int(1)]).unwrap();
        let messages = [
            BrokerToClient::Welcome {
                client: ClientId::new(1),
                resume_from: 10,
            },
            BrokerToClient::Deliver { seq: 11, event },
            BrokerToClient::SubAck {
                id: SubscriptionId::new(2),
            },
            BrokerToClient::UnsubAck {
                id: SubscriptionId::new(2),
            },
            BrokerToClient::Error {
                message: "no such schema".into(),
            },
            BrokerToClient::Stats(NodeCounters {
                published: 1,
                forwarded: 2,
                delivered: 3,
                errors: 4,
                subscriptions: 5,
                spooled: 6,
                retransmitted: 7,
                dropped_spool_overflow: 8,
                protocol_errors: 9,
                pings_sent: 10,
                liveness_timeouts: 11,
                evicted_slow_consumers: 12,
                peer_overflow_disconnects: 13,
                match_cache_hits: 14,
                match_cache_misses: 15,
                match_cache_invalidations: 16,
                wal_appends: 17,
                wal_replayed: 18,
                snapshot_writes: 19,
                torn_records_discarded: 20,
                recoveries: 21,
                repairs_initiated: 22,
                epoch_flips: 23,
                stale_epoch_drops: 24,
                rerouted_frames: 25,
            }),
        ];
        for m in messages {
            let back = BrokerToClient::decode(strip(m.encode()), &reg).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn broker_to_broker_subscription_roundtrips() {
        let reg = registry();
        let schema = reg.get(SchemaId::new(0)).unwrap();
        let sub = Subscription::new(
            SubscriptionId::new(5),
            SubscriberId::new(BrokerId::new(1), ClientId::new(2)),
            linkcast_types::parse_predicate(schema, "volume > 10").unwrap(),
        );
        for resync in [false, true] {
            let m = BrokerToBroker::SubAdd {
                schema: SchemaId::new(0),
                subscription: sub.clone(),
                resync,
            };
            let back = BrokerToBroker::decode(strip(m.encode()), &reg).unwrap();
            assert_eq!(back, m);
        }

        let hello = BrokerToBroker::Hello {
            broker: BrokerId::new(7),
            incarnation: 0xdead_beef_0000_0001,
            last_recv: 99,
            last_recv_incarnation: 0xdead_beef_0000_0000,
            send_seq: 120,
        };
        assert_eq!(
            BrokerToBroker::decode(strip(hello.encode()), &reg).unwrap(),
            hello
        );
        let rm = BrokerToBroker::SubRemove {
            id: SubscriptionId::new(5),
        };
        assert_eq!(
            BrokerToBroker::decode(strip(rm.encode()), &reg).unwrap(),
            rm
        );
        let ack = BrokerToBroker::FwdAck { seq: 77 };
        assert_eq!(
            BrokerToBroker::decode(strip(ack.encode()), &reg).unwrap(),
            ack
        );
        for probe in [BrokerToBroker::Ping, BrokerToBroker::Pong] {
            assert_eq!(
                BrokerToBroker::decode(strip(probe.encode()), &reg).unwrap(),
                probe
            );
        }

        let event = Event::from_values(schema, [Value::str("X"), Value::Int(2)]).unwrap();
        let fwd = BrokerToBroker::Forward {
            tree: TreeId::from_index(2),
            seq: 31,
            epoch: 6,
            event,
        };
        assert_eq!(
            BrokerToBroker::decode(strip(fwd.encode()), &reg).unwrap(),
            fwd
        );

        for msg in [
            BrokerToBroker::LinkDown {
                a: BrokerId::new(1),
                b: BrokerId::new(3),
                ver: 7,
            },
            BrokerToBroker::LinkUp {
                a: BrokerId::new(1),
                b: BrokerId::new(3),
                ver: 8,
            },
        ] {
            assert_eq!(
                BrokerToBroker::decode(strip(msg.encode()), &reg).unwrap(),
                msg
            );
        }
    }

    #[test]
    fn stitched_frames_match_enum_encoding() {
        let reg = registry();
        let schema = reg.get(SchemaId::new(0)).unwrap();
        let event = Event::from_values(schema, [Value::str("IBM"), Value::Int(5)]).unwrap();
        let body = encode_event_body(&event);
        assert_eq!(
            publish_frame(&body),
            ClientToBroker::Publish {
                event: event.clone()
            }
            .encode()
        );
        assert_eq!(
            forward_frame(TreeId::from_index(3), 17, 5, &body),
            BrokerToBroker::Forward {
                tree: TreeId::from_index(3),
                seq: 17,
                epoch: 5,
                event: event.clone()
            }
            .encode()
        );
        assert_eq!(
            deliver_frame(42, &body),
            BrokerToClient::Deliver { seq: 42, event }.encode()
        );
    }

    #[test]
    fn body_offsets_locate_the_encoded_event() {
        let reg = registry();
        let schema = reg.get(SchemaId::new(0)).unwrap();
        let event = Event::from_values(schema, [Value::str("HP"), Value::Int(9)]).unwrap();
        let body = encode_event_body(&event);
        let publish = strip(
            ClientToBroker::Publish {
                event: event.clone(),
            }
            .encode(),
        );
        assert_eq!(publish.slice(PUBLISH_BODY_OFFSET..), body);
        let forward = strip(
            BrokerToBroker::Forward {
                tree: TreeId::from_index(1),
                seq: 9,
                epoch: 2,
                event,
            }
            .encode(),
        );
        assert_eq!(forward.slice(FORWARD_BODY_OFFSET..), body);
    }

    #[test]
    fn garbage_is_rejected() {
        let reg = registry();
        assert!(ClientToBroker::decode(Bytes::new(), &reg).is_err());
        assert!(ClientToBroker::decode(Bytes::from_static(&[0xff]), &reg).is_err());
        assert!(BrokerToClient::decode(Bytes::from_static(&[0x12, 1]), &reg).is_err());
        assert!(BrokerToBroker::decode(Bytes::from_static(&[0x23]), &reg).is_err());
    }

    #[test]
    fn event_body_bounds() {
        assert!(check_event_body(0).is_ok());
        assert!(check_event_body(MAX_EVENT_BODY).is_ok());
        let over = MAX_EVENT_BODY + 1;
        assert_eq!(check_event_body(over), Err(ProtocolError::Oversized(over)));
        // The headroom exists so an accepted body re-stitched with the
        // Forward routing header (and the 4-byte length prefix) still
        // fits every receiver's MAX_FRAME — otherwise the oversized
        // Forward would flap the link forever.
        const { assert!(MAX_EVENT_BODY + FORWARD_BODY_OFFSET + 4 <= MAX_FRAME) };
        const { assert!(MAX_EVENT_BODY < MAX_FRAME_LEN) };
    }

    fn stats_payload(counters: &[u64]) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u8(B2C_STATS);
        for &c in counters {
            b.put_u64_le(c);
        }
        b.freeze()
    }

    #[test]
    fn stats_decodes_shorter_older_payloads() {
        let reg = registry();
        // An 8-counter payload, as a pre-heartbeat build would send: the
        // prefix lands in wire order, the unknown tail defaults to zero.
        match BrokerToClient::decode(stats_payload(&[1, 2, 3, 4, 5, 6, 7, 8]), &reg).unwrap() {
            BrokerToClient::Stats(c) => {
                assert_eq!(
                    (
                        c.published,
                        c.forwarded,
                        c.delivered,
                        c.errors,
                        c.subscriptions,
                        c.spooled,
                        c.retransmitted,
                        c.dropped_spool_overflow
                    ),
                    (1, 2, 3, 4, 5, 6, 7, 8)
                );
                assert_eq!(c.protocol_errors, 0);
                assert_eq!(c.match_cache_invalidations, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Degenerate but legal: a zero-counter payload is all defaults.
        match BrokerToClient::decode(stats_payload(&[]), &reg).unwrap() {
            BrokerToClient::Stats(c) => assert_eq!(c, NodeCounters::default()),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_ignores_longer_newer_payloads() {
        let reg = registry();
        // A 29-counter payload from a future build: the 25 counters this
        // build knows decode in wire order, the 4 extra are ignored.
        let counters: Vec<u64> = (1..=29).collect();
        match BrokerToClient::decode(stats_payload(&counters), &reg).unwrap() {
            BrokerToClient::Stats(c) => {
                assert_eq!(c.published, 1);
                assert_eq!(c.match_cache_invalidations, 16);
                assert_eq!(c.recoveries, 21);
                assert_eq!(c.rerouted_frames, 25);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_rejects_ragged_payloads() {
        let reg = registry();
        let mut b = BytesMut::new();
        b.put_u8(B2C_STATS);
        b.put_u64_le(1);
        b.put_u32_le(2); // half a counter
        let err = BrokerToClient::decode(b.freeze(), &reg).unwrap_err();
        assert!(err.to_string().contains("ragged"), "{err}");
    }
}
