//! The transport abstraction: the byte-stream surface the broker needs
//! from its network, factored behind traits so the default TCP stack
//! ([`crate::tcp::TcpTransport`]) and the deterministic in-memory network
//! ([`crate::simnet::SimNet`]) are interchangeable.
//!
//! The contract the broker relies on (DESIGN.md §12):
//!
//! - A connection is a reliable, ordered duplex byte stream. Frames are
//!   `[u32 LE length][payload]`; ordering per direction is what the
//!   per-link cumulative sequence dedup assumes.
//! - Readers block in short quanta: a read that has nothing to deliver
//!   returns `WouldBlock`/`TimedOut` within ~200 ms so reader threads can
//!   observe shutdown flags and handshake deadlines. `Ok(0)` means the
//!   peer really closed (EOF), never a timeout.
//! - [`LinkWriter::shutdown`] closes *both* directions, so the peer's
//!   reader and any local reader clone observe EOF — the teardown paths
//!   (`unregister`, `close_after_flush`) depend on that to unwedge reader
//!   threads and make dial-side supervisors redial.
//! - [`LinkWriter::set_write_timeout`] bounds how long a single write may
//!   block (SO_SNDTIMEO on TCP); a timed-out write fails the connection
//!   instead of wedging a sender-pool thread.

use std::fmt;
use std::io::{self, ErrorKind, Read};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::Sender;

use crate::broker::Command;
use crate::outbox::{ConnId, Outbox, Sink};
use crate::protocol::MAX_FRAME;

/// The read half of one connection. Reads must time out in short quanta
/// (returning `WouldBlock` or `TimedOut`) rather than blocking forever,
/// and `Ok(0)` must mean EOF — both are configured by the transport when
/// the connection is created.
pub type LinkReader = Box<dyn Read + Send>;

/// The write half of one connection, shared between the outbox sender
/// pool (writes) and teardown paths (shutdown).
pub trait LinkWriter: Send + Sync {
    /// Writes every buffer in `batch`, in order, completely (advancing
    /// through partial writes). Called by exactly one sender-pool thread
    /// at a time per connection.
    ///
    /// # Errors
    ///
    /// Any I/O failure, including a write stalled past the configured
    /// write timeout; the connection is declared dead either way.
    fn write_batch(&self, batch: &[Bytes]) -> io::Result<()>;
    /// Closes both directions of the connection so the peer (and any
    /// local reader handle on the same stream) observes EOF. Best-effort
    /// and idempotent.
    fn shutdown(&self);
    /// Bounds how long one write may block before failing (`None` removes
    /// the bound). Best-effort: a transport that cannot honor it merely
    /// loses the stalled-writer protection.
    fn set_write_timeout(&self, timeout: Option<Duration>);
}

/// A connected duplex link, split into the broker's two halves.
pub struct Connection {
    /// The read half (owned by a reader thread).
    pub reader: LinkReader,
    /// The write half (registered with the outbox).
    pub writer: Arc<dyn LinkWriter>,
}

/// A bound accept socket.
pub trait Listener: Send {
    /// Accepts one pending connection. Returns `ErrorKind::WouldBlock`
    /// when none is pending (the accept loop polls).
    ///
    /// # Errors
    ///
    /// `WouldBlock` when nothing is pending; any other error is treated
    /// as transient and retried after a pause.
    fn accept(&self) -> io::Result<Connection>;
    /// The bound address (with the OS- or net-assigned port resolved).
    ///
    /// # Errors
    ///
    /// Transport-level failures resolving the local address.
    fn local_addr(&self) -> io::Result<SocketAddr>;
}

/// A network: binds listeners and dials peers. Brokers and clients hold
/// one (`Arc`-shared) and never name `TcpStream` directly.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Binds a listener on `addr` (port 0 lets the transport pick).
    ///
    /// # Errors
    ///
    /// Transport-level bind failures (address in use, etc.).
    fn bind(&self, addr: SocketAddr) -> io::Result<Box<dyn Listener>>;
    /// Dials a peer and returns the connected link with all per-connection
    /// options (read-timeout quanta, nodelay) already applied.
    ///
    /// # Errors
    ///
    /// Connection failures (refused, unreachable, link down).
    fn dial(&self, addr: SocketAddr) -> io::Result<Connection>;
}

/// Spawns the accept loop. The listener must return `WouldBlock` when idle
/// so the loop can observe the shutdown flag between accepts.
///
/// Returns the acceptor's join handle: shutdown must join it so the
/// listener is provably unbound (not merely doomed) before `shutdown`
/// returns — a restart that re-binds the same address races the old
/// acceptor's final wakeup otherwise.
pub(crate) fn spawn_acceptor(
    listener: Box<dyn Listener>,
    cmd_tx: Sender<Command>,
    outbox: Arc<Outbox>,
    next_conn: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("acceptor".into())
        .spawn(move || {
            while !shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok(connection) => {
                        let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                        outbox.register(conn, Sink::Link(connection.writer));
                        spawn_reader(
                            connection.reader,
                            conn,
                            cmd_tx.clone(),
                            Arc::clone(&shutdown),
                        );
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })
}

/// Spawns a framed reader for one connection: reads `[u32 LE length]`
/// frames and forwards payloads to the engine. EOF or error reports a
/// disconnect.
pub(crate) fn spawn_reader(
    reader: LinkReader,
    conn: ConnId,
    cmd_tx: Sender<Command>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = std::thread::Builder::new()
        .name(format!("reader-{conn}"))
        .spawn(move || {
            // Buffered reads pull bursts of small frames out of the stream
            // in one underlying read; timeouts still surface when the
            // buffer runs dry between frames.
            let mut reader = std::io::BufReader::with_capacity(32 * 1024, reader);
            loop {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                match read_frame(&mut reader) {
                    Ok(Some(payload)) => {
                        if cmd_tx.send(Command::Frame(conn, payload)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => continue, // timeout between frames
                    Err(_) => {
                        let _ = cmd_tx.send(Command::Disconnected(conn));
                        return;
                    }
                }
            }
        });
}

/// Reads one `[u32 LE length][payload]` frame. `Ok(None)` means the read
/// timed out *between* frames (safe to retry); timeouts mid-frame keep
/// blocking until the frame completes or the peer dies.
///
/// # Errors
///
/// EOF (clean or mid-frame), oversized length prefixes, and transport
/// errors; all of them mean the connection is done.
pub(crate) fn read_frame(stream: &mut impl Read) -> io::Result<Option<Bytes>> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(stream, &mut header, true)? {
        ReadOutcome::TimedOutClean => return Ok(None),
        ReadOutcome::Done => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::other(format!(
            "frame of {len} bytes exceeds limit"
        )));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(stream, &mut payload, false)? {
        ReadOutcome::Done => Ok(Some(Bytes::from(payload))),
        // `read_exact_or_eof` reports a clean timeout only when allowed
        // (`clean_timeout = true`); mid-frame it retries internally, so
        // this arm is unreachable — fail the stream rather than panic on
        // a hot path if that invariant ever breaks.
        ReadOutcome::TimedOutClean => Err(io::Error::other("mid-frame timeout escaped retry")),
    }
}

enum ReadOutcome {
    Done,
    /// Timed out before the first byte (only when `clean_timeout` allowed).
    TimedOutClean,
}

fn read_exact_or_eof(
    stream: &mut impl Read,
    buf: &mut [u8],
    clean_timeout: bool,
) -> io::Result<ReadOutcome> {
    let mut read = 0;
    while read < buf.len() {
        // analyzer:allow(index): read < buf.len() is the loop condition, so the slice start is in range
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed the connection",
                ))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if read == 0 && clean_timeout {
                    return Ok(ReadOutcome::TimedOutClean);
                }
                // Mid-frame: keep waiting for the rest.
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}
