//! The default transport: blocking `std::net` TCP.
//!
//! Implements the [`crate::transport`] traits over OS sockets. Every
//! connection gets `TCP_NODELAY` plus a 200 ms read timeout (the quantum
//! the reader contract requires so threads can poll shutdown flags), and
//! the read half is a `try_clone` of the same socket — shutting the write
//! half down with `Shutdown::Both` is what unblocks it.

use std::io::{self, IoSlice, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::transport::{Connection, LinkWriter, Listener, Transport};

/// The default [`Transport`]: blocking TCP over `std::net`, matching the
/// paper's prototype (OS threads, kernel sockets, no async runtime).
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpTransport;

impl Transport for TcpTransport {
    fn bind(&self, addr: SocketAddr) -> io::Result<Box<dyn Listener>> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accepts let the accept loop poll the shutdown flag.
        listener.set_nonblocking(true)?;
        Ok(Box::new(TcpAcceptor(listener)))
    }

    fn dial(&self, addr: SocketAddr) -> io::Result<Connection> {
        tcp_connection(TcpStream::connect(addr)?)
    }
}

struct TcpAcceptor(TcpListener);

impl Listener for TcpAcceptor {
    fn accept(&self) -> io::Result<Connection> {
        let (stream, _peer) = self.0.accept()?;
        tcp_connection(stream)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.0.local_addr()
    }
}

/// Applies the per-connection options the broker relies on (nodelay for
/// latency, the 200 ms read-quantum timeout) and splits the socket into
/// the reader/writer halves via `try_clone` (same fd, so a `shutdown`
/// on the writer unblocks the reader).
fn tcp_connection(stream: TcpStream) -> io::Result<Connection> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let reader = stream.try_clone()?;
    Ok(Connection {
        reader: Box::new(reader),
        writer: Arc::new(TcpWriter(stream)),
    })
}

/// The TCP write half (the outbox's sink).
pub(crate) struct TcpWriter(pub(crate) TcpStream);

impl LinkWriter for TcpWriter {
    fn write_batch(&self, batch: &[Bytes]) -> io::Result<()> {
        write_vectored_all(&mut &self.0, batch)
    }

    fn shutdown(&self) {
        let _ = self.0.shutdown(Shutdown::Both);
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) {
        // Best effort: a socket we cannot time-stamp still works, it just
        // loses the stalled-writer protection.
        let _ = self.0.set_write_timeout(timeout);
    }
}

/// Writes every buffer in `batch` with vectored I/O, advancing through
/// partial writes. One syscall per drain batch in the common case, versus
/// one per frame with `write_all`.
fn write_vectored_all(stream: &mut impl Write, batch: &[Bytes]) -> io::Result<()> {
    let mut idx = 0; // first buffer not fully written
    let mut off = 0; // bytes of batch[idx] already written
    while idx < batch.len() {
        // analyzer:allow(index): idx < batch.len() is the loop condition, off < batch[idx].len() its invariant
        let first = IoSlice::new(&batch[idx][off..]);
        // analyzer:allow(index): idx + 1 <= batch.len(), so the tail slice is at worst empty
        let rest = batch[idx + 1..].iter().map(|b| IoSlice::new(b));
        let slices: Vec<IoSlice<'_>> = std::iter::once(first).chain(rest).collect();
        let mut n = stream.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        while idx < batch.len() {
            // analyzer:allow(index): idx < batch.len() is the loop condition
            let remaining = batch[idx].len() - off;
            if n >= remaining {
                n -= remaining;
                idx += 1;
                off = 0;
            } else {
                off += n;
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectored_writer_survives_partial_writes() {
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                // Accept at most 3 bytes per call.
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
                let first = bufs.iter().find(|b| !b.is_empty()).map_or(&[][..], |b| b);
                self.write(first)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let batch = [
            Bytes::from_static(b"hello"),
            Bytes::from_static(b""),
            Bytes::from_static(b"world!"),
        ];
        let mut sink = Dribble(Vec::new());
        write_vectored_all(&mut sink, &batch).unwrap();
        assert_eq!(sink.0, b"helloworld!");
    }
}
