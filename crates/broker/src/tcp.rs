//! The TCP transport: acceptor and framed readers.

use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::Sender;

use crate::broker::Command;
use crate::outbox::{ConnId, Outbox, Sink};
use crate::protocol::MAX_FRAME;

/// Spawns the accept loop. The listener must already be non-blocking; the
/// loop polls it so it can observe the shutdown flag.
pub(crate) fn spawn_acceptor(
    listener: TcpListener,
    cmd_tx: Sender<Command>,
    outbox: Arc<Outbox>,
    next_conn: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    std::thread::Builder::new()
        .name("acceptor".into())
        .spawn(move || {
            while !shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nodelay(true).is_err() {
                            continue;
                        }
                        let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                        match stream.try_clone() {
                            Ok(reader) => {
                                outbox.register(conn, Sink::Tcp(stream));
                                spawn_reader(reader, conn, cmd_tx.clone(), Arc::clone(&shutdown));
                            }
                            Err(_) => continue,
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })?;
    Ok(())
}

/// Spawns a framed reader for one connection: reads `[u32 LE length]`
/// frames and forwards payloads to the engine. EOF or error reports a
/// disconnect.
pub(crate) fn spawn_reader(
    stream: TcpStream,
    conn: ConnId,
    cmd_tx: Sender<Command>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = std::thread::Builder::new()
        .name(format!("reader-{conn}"))
        .spawn(move || {
            // Periodic timeouts let the thread observe shutdown.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            // Buffered reads pull bursts of small frames out of the socket
            // in one syscall; timeouts still surface when the buffer runs
            // dry between frames.
            let mut stream = std::io::BufReader::with_capacity(32 * 1024, stream);
            loop {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                match read_frame(&mut stream) {
                    Ok(Some(payload)) => {
                        if cmd_tx.send(Command::Frame(conn, payload)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => continue, // timeout between frames
                    Err(_) => {
                        let _ = cmd_tx.send(Command::Disconnected(conn));
                        return;
                    }
                }
            }
        });
}

/// Reads one `[u32 LE length][payload]` frame. `Ok(None)` means the read
/// timed out *between* frames (safe to retry); timeouts mid-frame keep
/// blocking until the frame completes or the peer dies.
pub(crate) fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Bytes>> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(stream, &mut header, true)? {
        ReadOutcome::TimedOutClean => return Ok(None),
        ReadOutcome::Done => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::other(format!(
            "frame of {len} bytes exceeds limit"
        )));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(stream, &mut payload, false)? {
        ReadOutcome::Done => Ok(Some(Bytes::from(payload))),
        ReadOutcome::TimedOutClean => unreachable!("mid-frame timeouts retry"),
    }
}

enum ReadOutcome {
    Done,
    /// Timed out before the first byte (only when `clean_timeout` allowed).
    TimedOutClean,
}

fn read_exact_or_eof(
    stream: &mut impl Read,
    buf: &mut [u8],
    clean_timeout: bool,
) -> std::io::Result<ReadOutcome> {
    let mut read = 0;
    while read < buf.len() {
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed the connection",
                ))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if read == 0 && clean_timeout {
                    return Ok(ReadOutcome::TimedOutClean);
                }
                // Mid-frame: keep waiting for the rest.
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}
