//! The broker node: connection manager, protocol state machine, and
//! lifecycle.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes};
use crossbeam::channel::{unbounded, Receiver, Sender};
use linkcast::{LinkTarget, MatchCache, RouteScratch, RoutingFabric, TreeId};
use linkcast_matching::{MatchStats, PstOptions};
use linkcast_types::{
    wire, BrokerId, ClientId, Event, LinkId, SchemaId, SchemaRegistry, SubscriberId, Subscription,
    SubscriptionId,
};
use parking_lot::{Mutex, RwLock};

use crate::control::{SubIdAllocator, TombstoneSet, SUB_COUNTER_BITS, SUB_ID_SPACE};
use crate::counters::{BrokerStats, Derived, Gauges, StatsInner};
use crate::engine::MatchingEngine;
use crate::log::{AckLog, EventLog};
use crate::outbox::{ConnId, Outbox, Sink};
use crate::protocol::{self, BrokerToBroker, BrokerToClient, ClientToBroker};
use crate::storage::{self, Storage, WalOp};
use crate::tcp::TcpTransport;
use crate::transport::{self, Transport};

/// How many received `Forward` frames a broker lets accumulate before it
/// pushes a cumulative `FwdAck` back over the link (the GC tick flushes
/// whatever is left, so acks also flow on idle links).
const FWD_ACK_EVERY: u64 = 64;

/// Initial (and minimum) redial backoff for supervised links.
const LINK_REDIAL_MIN: Duration = Duration::from_millis(50);
/// Redial backoff ceiling.
const LINK_REDIAL_MAX: Duration = Duration::from_secs(2);
/// How long a supervised link must survive before the redial backoff
/// resets to the minimum. A neighbor that accepts the TCP handshake and
/// then immediately dies (crash loop) keeps backing off instead of being
/// hot-redialed at the minimum interval forever.
const LINK_STABILITY_WINDOW: Duration = Duration::from_secs(2);

/// Saturating millisecond conversion for intervals stored in atomics.
fn duration_to_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1)
}

/// Stretches a redial backoff by a deterministic pseudo-random factor in
/// `[1.0, 1.5)`, advancing `state` (splitmix64) on each call. Without
/// jitter every supervisor redials a recovering neighbor in lockstep —
/// the escalation ladder is deterministic and shared — so a broker
/// coming back from a crash takes the whole mesh's dials in one burst.
/// Seeding `state` per (local, neighbor) pair decorrelates the herd
/// while keeping every schedule reproducible.
fn jittered_backoff(backoff: Duration, state: &mut u64) -> Duration {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let ms = duration_to_ms(backoff);
    // Up to +50% in whole milliseconds; `ms / 2 + 1` keeps the modulus
    // nonzero for sub-2ms backoffs.
    let extra = z % (ms / 2 + 1);
    Duration::from_millis(ms.saturating_add(extra))
}

/// Per-link jitter seed: distinct for every (local, neighbor) pair so
/// supervisors that share an escalation ladder still spread their dials.
fn jitter_seed(me: BrokerId, neighbor: BrokerId) -> u64 {
    (u64::from(me.raw()) << 32) ^ u64::from(neighbor.raw()) ^ 0x5851_f42d_4c95_7f2d
}

/// Seed for the heartbeat ping jitter stream: derived from the redial
/// seed for the same (local, neighbor) pair but offset so the two
/// schedules draw from decorrelated splitmix64 sequences — a link's ping
/// cadence must not mirror its redial cadence.
fn heartbeat_jitter_seed(me: BrokerId, neighbor: BrokerId) -> u64 {
    jitter_seed(me, neighbor) ^ 0x9e37_79b9_7f4a_7c15
}

/// Configuration of one broker node.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// This broker's identity in the topology.
    pub broker: BrokerId,
    /// Shared topology + spanning trees (identical on every node).
    pub fabric: Arc<RoutingFabric>,
    /// Information spaces served.
    pub registry: Arc<SchemaRegistry>,
    /// PST options for the matching engine.
    pub options: PstOptions,
    /// Listen address; use port 0 to let the OS pick.
    pub listen: SocketAddr,
    /// The network the node binds and dials through:
    /// [`TcpTransport`] (the default) for real sockets, or a
    /// [`SimNet`](crate::SimNet) host for deterministic in-process
    /// clusters.
    pub transport: Arc<dyn Transport>,
    /// Size of the sending-thread pool.
    pub sender_threads: usize,
    /// Garbage-collection period for client event logs.
    pub gc_interval: Duration,
    /// Maximum retained entries per client log (older unacknowledged
    /// entries are dropped and counted as lost).
    pub log_bound: usize,
    /// How long a disconnected client's log is retained before the garbage
    /// collector reclaims it entirely. A client reconnecting later starts a
    /// fresh session (sequence numbers restart).
    pub client_ttl: Duration,
    /// Number of matching-worker shards. With the default `1`, matching
    /// runs inline on the engine thread and every operation is processed in
    /// arrival order. With `N > 1`, events are matched on a pool of worker
    /// threads sharded by information space (schema id modulo `N`):
    /// same-space events keep their order, but an event may be matched
    /// after a subscribe/unsubscribe that arrived behind it — a throughput
    /// mode for publish-heavy workloads, not a different protocol.
    pub match_shards: usize,
    /// Threads for fanning one PST walk out during matching
    /// (`Pst::matches_parallel`); `1` keeps the sequential trit search.
    /// Large subscription trees benefit; small trees fall back to the
    /// sequential path internally regardless of this setting.
    pub match_threads: usize,
    /// Route events through the arena-flattened matching walk (index-based
    /// node table + reusable scratch masks) instead of the boxed recursive
    /// search. Identical link sets either way — this is the A/B switch for
    /// the `broker_pipeline` benchmark's `arena` legs; leave it `true`
    /// everywhere else.
    pub match_arena: bool,
    /// Capacity of each match shard's result cache (entries), keyed by the
    /// event's *tested* attribute values and invalidated wholesale when the
    /// subscription set changes generation. `0` disables caching. Only
    /// consulted on the arena path (`match_arena = true`).
    pub match_cache_cap: usize,
    /// Maximum retained entries per broker-link spool. Events routed
    /// toward a neighbor are held (as stitched `Forward` frames) until the
    /// neighbor's cumulative acknowledgment; while a link is down the
    /// spool keeps growing up to this bound, after which the oldest
    /// unacknowledged frames are dropped and counted in
    /// [`BrokerStats::dropped_spool_overflow`].
    pub link_spool_bound: usize,
    /// How long a broker link may sit with no *received* traffic before the
    /// engine probes it with a `Ping`. Doubles as the heartbeat timer's
    /// tick period, so detection granularity is one interval. This is the
    /// initial value; [`BrokerNode::set_heartbeat_interval`] retunes a
    /// running node.
    pub heartbeat_interval: Duration,
    /// How long a broker link may stay completely silent (no frames at
    /// all — a live peer answers pings) before it is declared dead and torn
    /// down. The link spool keeps every unacknowledged frame, so the redial
    /// handshake retransmits and nothing is lost. Should be several
    /// heartbeat intervals.
    pub liveness_timeout: Duration,
    /// Per-connection cap on queued outgoing bytes. A client that crosses
    /// it (a subscriber that stopped reading) is evicted with a final
    /// `Error` frame; a broker peer that crosses it is disconnected and its
    /// spool retransmits after the redial. Either way one stalled consumer
    /// costs at most this much memory, not the broker.
    pub conn_queue_bound: u64,
    /// Graceful-shutdown drain deadline: how long [`BrokerNode::shutdown`]
    /// waits for queued frames (final acks, tail-of-stream deliveries) to
    /// flush before cutting stragglers off.
    pub drain_timeout: Duration,
    /// How long a dialed neighbor may take to send its first frame (the
    /// `Hello` handshake answer) before the link supervisor gives up and
    /// redials with backoff. A peer that accepts the TCP connection and
    /// then stalls would otherwise wedge the link forever.
    pub link_handshake_timeout: Duration,
    /// SO_SNDTIMEO applied to every TCP connection: a peer that stops
    /// reading while the kernel send buffer is full fails the write (and is
    /// disconnected) instead of wedging a sender-pool thread indefinitely.
    pub write_stall_timeout: Duration,
    /// Reproduces the pre-pipeline dataflow for A/B measurement: every
    /// outgoing `Forward`/`Deliver` frame re-serializes the event through
    /// the protocol enums, and the outbox writes one frame per syscall
    /// instead of draining queues with batched vectored writes. Protocol
    /// behavior is identical — only the per-event cost changes. This is the
    /// "before" leg of the `broker_pipeline` benchmark; leave it `false`
    /// everywhere else.
    pub seed_dataflow: bool,
    /// Durable storage for crash consistency, or `None` (the default) for
    /// a purely in-memory broker. With storage configured, every routed
    /// event's spool appends and receive mark commit to a write-ahead log
    /// before its `Forward` frames reach the wire, control state
    /// (subscriptions, id allocator, incarnation, link windows) checkpoints
    /// to snapshots, and boot becomes recovery: load the snapshot, replay
    /// the WAL suffix, discard torn tails, and resume the *same*
    /// incarnation — to peers a crash looks like a long link stall, not a
    /// restart. See `DESIGN.md` §14.
    pub storage: Option<Arc<dyn Storage>>,
    /// Snapshot cadence with storage configured: after this many WAL
    /// records the broker checkpoints a snapshot and truncates the log,
    /// bounding both recovery replay time and WAL growth.
    pub snapshot_every: u64,
    /// Consecutive failed redials of a supervised link
    /// ([`BrokerNode::connect_to_persistent`]) after which the dialing
    /// broker declares the link dead and floods a `LinkDown` statement,
    /// triggering a topology repair: every broker recomputes its spanning
    /// forest over the surviving graph and routing cuts over under a new
    /// topology epoch (see `DESIGN.md` §15). `0` (the default) disables
    /// escalation — transient flaps then rely on spool-and-retransmit
    /// alone, which on a non-redundant (tree) topology is the only option
    /// anyway: repair can reroute only while the surviving graph stays
    /// connected. Escalation fires once per down episode; a successful
    /// handshake re-arms it.
    pub repair_after: u32,
    /// With storage configured: fsync the WAL before journaled `Forward`
    /// frames reach the wire (fsync-on-commit — a torn tail record can
    /// only ever describe frames no peer received). Disabling trades the
    /// power-cut guarantee for process-crash-only durability at much lower
    /// latency; the `durability` bench leg tracks the gap.
    pub wal_sync: bool,
}

impl BrokerConfig {
    /// A localhost configuration with OS-assigned port and default tuning.
    pub fn localhost(
        broker: BrokerId,
        fabric: Arc<RoutingFabric>,
        registry: Arc<SchemaRegistry>,
    ) -> Self {
        BrokerConfig {
            broker,
            fabric,
            registry,
            options: PstOptions::default(),
            // analyzer:allow(panic): startup-time parse of a literal address, not dataflow
            listen: "127.0.0.1:0".parse().expect("valid literal address"),
            transport: Arc::new(TcpTransport),
            sender_threads: 2,
            gc_interval: Duration::from_millis(250),
            log_bound: 4096,
            client_ttl: Duration::from_secs(3600),
            match_shards: 1,
            match_threads: 1,
            match_arena: true,
            match_cache_cap: 0,
            link_spool_bound: 32768,
            heartbeat_interval: Duration::from_millis(500),
            liveness_timeout: Duration::from_secs(5),
            conn_queue_bound: 8 * 1024 * 1024,
            drain_timeout: Duration::from_secs(1),
            link_handshake_timeout: Duration::from_secs(2),
            write_stall_timeout: Duration::from_secs(5),
            seed_dataflow: false,
            repair_after: 0,
            storage: None,
            snapshot_every: 256,
            wal_sync: true,
        }
    }
}

pub(crate) enum Command {
    /// A frame payload (length prefix stripped) from a connection.
    Frame(ConnId, Bytes),
    /// The dialing side knows which neighbor it reached.
    DialedNeighbor(ConnId, BrokerId),
    /// A connection died (reader EOF/error or writer failure).
    Disconnected(ConnId),
    /// A matching-worker shard finished routing an event; the engine thread
    /// performs the dispatch (log appends and connection lookups stay
    /// single-threaded).
    Routed {
        event: Event,
        tree: TreeId,
        /// The event's wire encoding, sliced from the incoming frame.
        body: Bytes,
        links: Vec<LinkId>,
        /// Where the event entered routing: `Some((neighbor, seq,
        /// incarnation))` for a `Forward` from a peer, `None` for a local
        /// publish. Dispatch journals the receive mark from this, so the
        /// provenance must ride through the matching shards with the event.
        source: Option<(BrokerId, u64, u64)>,
        /// The topology epoch the links were computed under. A shard
        /// result that crosses an epoch flip in flight carries a stale
        /// epoch; the engine discards its links and re-matches inline
        /// under the repaired trees instead of dispatching over dead
        /// edges.
        epoch: u64,
    },
    /// A supervised link's redial escalation crossed
    /// [`BrokerConfig::repair_after`] consecutive failures (or an
    /// operator called [`BrokerNode::mark_link_down`]): declare the edge
    /// to this neighbor dead, flood the `LinkDown` statement, and repair
    /// the topology around it.
    LinkUnreachable(BrokerId),
    /// Periodic garbage collection of client logs.
    GcTick,
    /// Periodic liveness timer: ping idle broker links, tear down links
    /// silent past the liveness timeout.
    HeartbeatTick,
    /// A connection's outgoing queue crossed
    /// [`BrokerConfig::conn_queue_bound`] (reported once by the outbox);
    /// the engine picks the policy — client eviction or peer disconnect.
    QueueOverflow(ConnId),
    /// Stop the engine loop.
    Shutdown,
    /// Crash-stop the engine loop (fault injection): exit immediately,
    /// without the final ack flush a graceful `Shutdown` performs.
    Crash,
}

/// One unit of work for a matching-worker shard.
struct MatchJob {
    event: Event,
    tree: TreeId,
    /// The event's wire encoding, carried through so dispatch never
    /// re-serializes.
    body: Bytes,
    /// Provenance for the WAL receive mark; see [`Command::Routed`].
    source: Option<(BrokerId, u64, u64)>,
    /// Topology epoch at enqueue time; see [`Command::Routed`].
    epoch: u64,
}

enum Peer {
    Client(ClientId),
    Broker(BrokerId),
}

struct ClientState {
    conn: Option<ConnId>,
    log: EventLog,
    /// When the client's connection dropped (None while connected).
    disconnected_at: Option<std::time::Instant>,
}

/// A running broker node (also its handle: inspect stats, connect
/// neighbors, open local connections, shut down).
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use linkcast::{NetworkBuilder, RoutingFabric};
/// use linkcast_types::{EventSchema, SchemaRegistry, ValueKind};
/// use linkcast_broker::{BrokerConfig, BrokerNode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let b0 = b.add_broker();
/// let _client = b.add_client(b0)?;
/// let fabric = RoutingFabric::new_all_roots(b.build()?)?;
/// let mut registry = SchemaRegistry::new();
/// registry.register(
///     EventSchema::builder("trades")
///         .attribute("issue", ValueKind::Str)
///         .build()?,
/// )?;
/// let node = BrokerNode::start(BrokerConfig::localhost(b0, fabric, Arc::new(registry)))?;
/// println!("listening on {}", node.addr());
/// node.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct BrokerNode {
    broker: BrokerId,
    addr: SocketAddr,
    registry: Arc<SchemaRegistry>,
    cmd_tx: Sender<Command>,
    outbox: Arc<Outbox>,
    stats: Arc<StatsInner>,
    match_stats: Arc<Vec<Mutex<MatchStats>>>,
    shutdown: Arc<AtomicBool>,
    next_conn: Arc<AtomicU64>,
    /// [`BrokerConfig::transport`], kept for outbound dials.
    transport: Arc<dyn Transport>,
    /// [`BrokerConfig::drain_timeout`], kept for the shutdown path.
    drain_timeout: Duration,
    /// [`BrokerConfig::link_handshake_timeout`], kept for link supervisors.
    link_handshake_timeout: Duration,
    /// Current heartbeat probe interval in milliseconds, shared with the
    /// ticker thread and the engine loop so it can be retuned at runtime.
    heartbeat_ms: Arc<AtomicU64>,
    /// Current topology epoch, stored by the engine loop on every
    /// link-state flip and sampled by [`stats`](Self::stats). Equal
    /// epochs across brokers mean identical link-state tables, hence
    /// identical repaired forests — the cluster-convergence signal.
    topology_epoch: Arc<AtomicU64>,
    /// [`BrokerConfig::repair_after`], kept for link supervisors.
    repair_after: u32,
    engine_thread: Option<std::thread::JoinHandle<()>>,
    /// Joined on shutdown so the listener is unbound before `shutdown`
    /// returns — a restart re-binding the same address must not race the
    /// old acceptor's last wakeup.
    acceptor_thread: Option<std::thread::JoinHandle<()>>,
}

impl BrokerNode {
    /// Starts the node: binds the listener, spawns the engine loop, the
    /// sender pool, the acceptor, and the GC ticker.
    ///
    /// # Errors
    ///
    /// I/O errors from binding, or engine construction errors (boxed).
    pub fn start(config: BrokerConfig) -> Result<BrokerNode, Box<dyn std::error::Error>> {
        let listener = config.transport.bind(config.listen)?;
        let addr = listener.local_addr()?;

        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let (dead_tx, dead_rx) = unbounded::<ConnId>();
        let (overflow_tx, overflow_rx) = unbounded::<ConnId>();
        let drain_batch = if config.seed_dataflow {
            1
        } else {
            crate::outbox::DRAIN_BATCH
        };
        let outbox = Outbox::new(
            config.sender_threads.max(1),
            drain_batch,
            config.conn_queue_bound,
            Some(config.write_stall_timeout),
            dead_tx,
            overflow_tx,
        )?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let next_conn = Arc::new(AtomicU64::new(1));

        // Forward writer deaths into the command stream.
        {
            let cmd_tx = cmd_tx.clone();
            std::thread::Builder::new()
                .name("dead-conn-fwd".into())
                .spawn(move || {
                    for conn in dead_rx.iter() {
                        if cmd_tx.send(Command::Disconnected(conn)).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // Forward queue overflows into the command stream (the engine owns
        // the peer table, so only it can pick eviction vs. disconnect).
        {
            let cmd_tx = cmd_tx.clone();
            std::thread::Builder::new()
                .name("overflow-fwd".into())
                .spawn(move || {
                    for conn in overflow_rx.iter() {
                        if cmd_tx.send(Command::QueueOverflow(conn)).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // GC ticker.
        {
            let cmd_tx = cmd_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let interval = config.gc_interval;
            std::thread::Builder::new()
                .name("gc-ticker".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(interval);
                        if cmd_tx.send(Command::GcTick).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // Heartbeat ticker: the engine thread does the actual liveness
        // bookkeeping; this thread only provides the clock edge. The
        // interval lives in a shared atomic so `set_heartbeat_interval`
        // can retune a running node; sleeping in short quanta (rather
        // than one full interval) bounds how long a retune takes to bite.
        let heartbeat_ms = Arc::new(AtomicU64::new(duration_to_ms(config.heartbeat_interval)));
        {
            let cmd_tx = cmd_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let heartbeat_ms = Arc::clone(&heartbeat_ms);
            std::thread::Builder::new()
                .name("heartbeat-ticker".into())
                .spawn(move || {
                    let mut last_tick = std::time::Instant::now();
                    while !shutdown.load(Ordering::Acquire) {
                        let interval =
                            Duration::from_millis(heartbeat_ms.load(Ordering::Relaxed).max(1));
                        std::thread::sleep(interval.min(Duration::from_millis(100)));
                        if last_tick.elapsed() < interval {
                            continue;
                        }
                        last_tick = std::time::Instant::now();
                        if cmd_tx.send(Command::HeartbeatTick).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // Acceptor.
        let acceptor_thread = transport::spawn_acceptor(
            listener,
            cmd_tx.clone(),
            Arc::clone(&outbox),
            Arc::clone(&next_conn),
            Arc::clone(&shutdown),
        )?;

        // Durable-state recovery, before the engine loop exists: load the
        // snapshot, replay the WAL suffix on top (discarding torn tails),
        // and resume the recovered incarnation so peers' cumulative acks
        // stay valid. With no storage configured this is a fresh boot.
        let recovered = match &config.storage {
            Some(st) => recover(st.as_ref(), &config.registry, &stats)?,
            None => Recovered::fresh(),
        };

        // Matching engine, shared read-mostly between the engine thread
        // (writes on subscribe/unsubscribe, reads when matching inline) and
        // the matching-worker shards (reads only).
        let engine = Arc::new(RwLock::new(MatchingEngine::new(
            config.broker,
            &config.fabric,
            Arc::clone(&config.registry),
            config.options.clone(),
        )?));
        if !recovered.subscriptions.is_empty() {
            // Re-install the checkpointed subscription set. Failures are
            // skipped rather than fatal (a subscription that no longer
            // parses against the fabric is better dropped than blocking
            // boot); the anti-entropy resync heals any gap from peers.
            let mut eng = engine.write();
            for (schema, subscription) in &recovered.subscriptions {
                let _ = eng.subscribe(*schema, subscription.clone());
            }
            stats
                .subscriptions
                .store(eng.subscription_count() as u64, Ordering::Relaxed);
        }
        if let Some(st) = &config.storage {
            // Commit recovery: a boot snapshot of the merged state, then
            // truncate the WAL it absorbed. Snapshot-then-truncate order
            // makes a cut between the two steps harmless — the old records
            // replay idempotently on top of the new snapshot. Only after
            // this point may the engine talk to peers (the snapshot is
            // what makes the resumed incarnation durable).
            let snapshot = encode_snapshot(
                recovered.incarnation,
                &recovered.sub_ids,
                &recovered.tombstones,
                &recovered.recv_from,
                &recovered.spools,
                &recovered.subscriptions,
            );
            st.write_snapshot(STATE_SNAPSHOT, &snapshot)?;
            st.truncate(WAL_LOG)?;
            stats.snapshot_writes.fetch_add(1, Ordering::Relaxed);
        }
        let Recovered {
            incarnation,
            sub_ids,
            tombstones,
            recv_from,
            spools,
            subscriptions: _,
        } = recovered;
        let shards = config.match_shards.max(1);
        let match_stats: Arc<Vec<Mutex<MatchStats>>> =
            Arc::new((0..shards).map(|_| Mutex::new(MatchStats::new())).collect());

        // Matching-worker shards (only when configured): each worker owns
        // the PST walk for its share of the information spaces and hands
        // the routed link set back to the engine thread for dispatch.
        let mut shard_txs: Vec<Sender<MatchJob>> = Vec::new();
        if config.match_shards > 1 {
            for shard in 0..config.match_shards {
                let (tx, rx) = unbounded::<MatchJob>();
                let engine = Arc::clone(&engine);
                let cmd_tx = cmd_tx.clone();
                let shard_stats = Arc::clone(&match_stats);
                let threads = config.match_threads;
                let use_arena = config.match_arena;
                let cache_cap = config.match_cache_cap;
                std::thread::Builder::new()
                    .name(format!("match-{}-{shard}", config.broker))
                    .spawn(move || {
                        // Shard-owned, so no lock guards the cache or the
                        // scratch masks: each worker serializes its own
                        // information spaces by construction.
                        let mut cache = MatchCache::new(cache_cap);
                        let mut scratch = RouteScratch::new();
                        for job in rx.iter() {
                            let mut local = MatchStats::new();
                            let mut links = Vec::new();
                            if use_arena {
                                engine.read().route_cached(
                                    &job.event,
                                    job.tree,
                                    threads,
                                    &mut cache,
                                    &mut scratch,
                                    &mut local,
                                    &mut links,
                                );
                            } else {
                                links = engine
                                    .read()
                                    .route_parallel(&job.event, job.tree, threads, &mut local);
                            }
                            if let Some(shard_stats) = shard_stats.get(shard) {
                                *shard_stats.lock() += local;
                            }
                            let routed = Command::Routed {
                                event: job.event,
                                tree: job.tree,
                                body: job.body,
                                links,
                                source: job.source,
                                epoch: job.epoch,
                            };
                            if cmd_tx.send(routed).is_err() {
                                break;
                            }
                        }
                    })?;
                shard_txs.push(tx);
            }
        }

        // Engine loop.
        let topology_epoch = Arc::new(AtomicU64::new(0));
        let engine_thread = {
            let outbox = Arc::clone(&outbox);
            let stats = Arc::clone(&stats);
            let match_stats = Arc::clone(&match_stats);
            let config2 = config.clone();
            let heartbeat_ms = Arc::clone(&heartbeat_ms);
            let topology_epoch = Arc::clone(&topology_epoch);
            std::thread::Builder::new()
                .name(format!("broker-{}", config.broker))
                .spawn(move || {
                    let durable = config2.storage.clone().map(|st| Durable {
                        storage: st,
                        records_since_snapshot: 0,
                        buf: Vec::new(),
                    });
                    EngineLoop {
                        match_cache: MatchCache::new(config2.match_cache_cap),
                        route_scratch: RouteScratch::new(),
                        fabric: Arc::clone(&config2.fabric),
                        link_state: crate::repair::LinkStateTable::default(),
                        epoch: 0,
                        epoch_gauge: topology_epoch,
                        ping_jitter: HashMap::new(),
                        config: config2,
                        incarnation,
                        engine,
                        outbox,
                        stats,
                        match_stats,
                        shard_txs,
                        conns: HashMap::new(),
                        clients: HashMap::new(),
                        neighbors: HashMap::new(),
                        awaiting_hello: HashSet::new(),
                        spools,
                        recv_from,
                        tombstones,
                        sub_ids,
                        last_heard: HashMap::new(),
                        heartbeat_ms,
                        durable,
                    }
                    .run(cmd_rx)
                })?
        };

        Ok(BrokerNode {
            broker: config.broker,
            addr,
            registry: config.registry,
            cmd_tx,
            outbox,
            stats,
            match_stats,
            shutdown,
            next_conn,
            transport: config.transport,
            drain_timeout: config.drain_timeout,
            link_handshake_timeout: config.link_handshake_timeout,
            heartbeat_ms,
            topology_epoch,
            repair_after: config.repair_after,
            engine_thread: Some(engine_thread),
            acceptor_thread: Some(acceptor_thread),
        })
    }

    /// This broker's id.
    pub fn broker(&self) -> BrokerId {
        self.broker
    }

    /// Retunes the heartbeat probe interval on a running node (ops tuning
    /// without a restart; benches use it to toggle the sweep). Takes
    /// effect within one ticker quantum (at most ~100 ms). The liveness
    /// timeout is a detection policy, not a tuning knob, and stays fixed.
    pub fn set_heartbeat_interval(&self, interval: Duration) {
        self.heartbeat_ms
            .store(duration_to_ms(interval), Ordering::Relaxed);
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The information spaces served.
    pub fn registry(&self) -> &Arc<SchemaRegistry> {
        &self.registry
    }

    /// Dials a neighbor broker and performs the broker-protocol handshake.
    /// Call once per topology link (one side suffices; conventionally the
    /// higher-id broker dials).
    ///
    /// # Errors
    ///
    /// Connection I/O errors.
    pub fn connect_to(&self, neighbor: BrokerId, addr: SocketAddr) -> std::io::Result<()> {
        let connection = self.transport.dial(addr)?;
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.outbox.register(conn, Sink::Link(connection.writer));
        // The engine sends the `Hello` when it processes `DialedNeighbor`:
        // the handshake carries per-link sequence state only the engine
        // thread knows.
        let _ = self.cmd_tx.send(Command::DialedNeighbor(conn, neighbor));
        transport::spawn_reader(
            connection.reader,
            conn,
            self.cmd_tx.clone(),
            Arc::clone(&self.shutdown),
        );
        Ok(())
    }

    /// Like [`BrokerNode::connect_to`], but supervised: if the link drops
    /// (or the first dial fails), a background thread redials with
    /// exponential backoff until the node shuts down. The backoff resets
    /// only after a link has survived a stability window, so a neighbor
    /// stuck in an accept-then-crash loop is not hot-redialed at the
    /// minimum interval. On every (re-)establishment both sides exchange
    /// `Hello` handshakes that resync their full subscription sets *and*
    /// their per-link spool state: events routed toward the neighbor while
    /// the link was down were spooled (up to
    /// [`BrokerConfig::link_spool_bound`]) and are retransmitted after the
    /// handshake, with receiver-side sequence dedup discarding any copies
    /// that had already crossed before the flap — at-least-once across the
    /// link, exactly-once into client logs.
    pub fn connect_to_persistent(&self, neighbor: BrokerId, addr: SocketAddr) {
        let cmd_tx = self.cmd_tx.clone();
        let outbox = Arc::clone(&self.outbox);
        let next_conn = Arc::clone(&self.next_conn);
        let shutdown = Arc::clone(&self.shutdown);
        let transport = Arc::clone(&self.transport);
        let handshake_timeout = self.link_handshake_timeout;
        let repair_after = self.repair_after;
        let me = self.broker;
        let _ = std::thread::Builder::new()
            .name(format!("link-{me}-{neighbor}"))
            .spawn(move || {
                let mut backoff = LINK_REDIAL_MIN;
                let mut jitter = jitter_seed(me, neighbor);
                // Consecutive redial failures since the link last completed
                // a handshake; crossing `repair_after` escalates ONCE per
                // down episode to a `LinkDown` topology repair. A
                // successful handshake re-arms the escalation.
                let mut failures: u32 = 0;
                let mut escalated = false;
                while !shutdown.load(Ordering::Acquire) {
                    // Dial failures (including per-connection setup inside
                    // the transport) back off instead of spin-dialing.
                    // Never panic here — that would kill the supervisor
                    // thread and orphan the link forever.
                    let Ok(connection) = transport.dial(addr) else {
                        failures = failures.saturating_add(1);
                        if repair_after > 0 && failures >= repair_after && !escalated {
                            escalated = true;
                            if cmd_tx.send(Command::LinkUnreachable(neighbor)).is_err() {
                                return;
                            }
                        }
                        std::thread::sleep(jittered_backoff(backoff, &mut jitter));
                        backoff = (backoff * 2).min(LINK_REDIAL_MAX);
                        continue;
                    };
                    let mut reader = connection.reader;
                    let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                    outbox.register(conn, crate::outbox::Sink::Link(connection.writer));
                    // The engine answers `DialedNeighbor` with the `Hello`
                    // handshake (it owns the spool/sequence state).
                    if cmd_tx
                        .send(Command::DialedNeighbor(conn, neighbor))
                        .is_err()
                    {
                        return;
                    }
                    let established = std::time::Instant::now();
                    // A peer that accepted the dial owes us its `Hello` (its
                    // first frame) within the handshake deadline; one that
                    // accepts and then stalls must not wedge this supervisor.
                    let handshake_deadline = established + handshake_timeout;
                    let mut greeted = false;
                    // Inline read loop; on link death, fall through to redial.
                    loop {
                        if shutdown.load(Ordering::Acquire) {
                            return;
                        }
                        match transport::read_frame(&mut reader) {
                            Ok(Some(payload)) => {
                                if !greeted {
                                    greeted = true;
                                    // The peer answered: the down episode
                                    // (if any) is over; re-arm escalation.
                                    failures = 0;
                                    escalated = false;
                                }
                                if cmd_tx.send(Command::Frame(conn, payload)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => {
                                if !greeted && std::time::Instant::now() >= handshake_deadline {
                                    // Handshake never completed: tear the
                                    // conn down (the engine unregisters it,
                                    // closing the socket) and take the
                                    // backoff path like a failed dial.
                                    let _ = cmd_tx.send(Command::Disconnected(conn));
                                    break;
                                }
                                continue;
                            }
                            Err(_) => {
                                let _ = cmd_tx.send(Command::Disconnected(conn));
                                break;
                            }
                        }
                    }
                    // Only a link that proved stable (handshake included)
                    // earns a backoff reset; an accept-then-die or
                    // accept-then-stall neighbor keeps escalating.
                    backoff = if greeted && established.elapsed() >= LINK_STABILITY_WINDOW {
                        LINK_REDIAL_MIN
                    } else {
                        (backoff * 2).min(LINK_REDIAL_MAX)
                    };
                    if !greeted {
                        // Accept-then-stall counts toward repair escalation
                        // like a refused dial: the link is not usable.
                        failures = failures.saturating_add(1);
                        if repair_after > 0 && failures >= repair_after && !escalated {
                            escalated = true;
                            if cmd_tx.send(Command::LinkUnreachable(neighbor)).is_err() {
                                return;
                            }
                        }
                    }
                    std::thread::sleep(jittered_backoff(backoff, &mut jitter));
                }
            });
    }

    /// Operator escalation: declare the link to `neighbor` dead *now*,
    /// without waiting for [`BrokerConfig::repair_after`] redial
    /// failures. The broker floods a `LinkDown` statement and repairs
    /// its topology exactly as if the link supervisor had escalated.
    ///
    /// A link whose connection is currently live (handshake complete) is
    /// left alone — marking a healthy link down is a no-op, which also
    /// makes a stale supervisor escalation racing a reconnect harmless.
    /// The repair undoes itself when the link next completes a `Hello`
    /// handshake (a `LinkUp` statement floods).
    pub fn mark_link_down(&self, neighbor: BrokerId) {
        let _ = self.cmd_tx.send(Command::LinkUnreachable(neighbor));
    }

    /// Opens an in-process connection (bypassing TCP). The returned pair is
    /// a sender for client frames and a receiver of broker frames — used by
    /// tests and the throughput benchmark.
    pub fn open_local(&self) -> LocalConn {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded::<Bytes>();
        self.outbox.register(conn, Sink::Chan(tx));
        LocalConn {
            conn,
            cmd_tx: self.cmd_tx.clone(),
            rx,
            registry: Arc::clone(&self.registry),
        }
    }

    /// A snapshot of the broker's counters.
    pub fn stats(&self) -> BrokerStats {
        let (queued_frames, queued_bytes) = self.outbox.queue_depth();
        let matching = self.match_stats();
        self.stats.broker_stats(
            Derived {
                match_cache_hits: matching.cache_hits,
                match_cache_misses: matching.cache_misses,
                match_cache_invalidations: matching.cache_invalidations,
            },
            Gauges {
                queued_frames,
                queued_bytes,
                connections: self.outbox.connections(),
                topology_epoch: self.topology_epoch.load(Ordering::Relaxed),
            },
        )
    }

    /// Aggregated matching cost across the inline path and every
    /// matching-worker shard.
    pub fn match_stats(&self) -> MatchStats {
        let mut total = MatchStats::new();
        for shard_stats in self.match_stats.iter() {
            total += *shard_stats.lock();
        }
        total
    }

    /// Stops the node: the engine loop exits, the acceptor stops, reader
    /// threads wind down at their next poll.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // The flag stops the acceptor (no new connections join the drain)
        // and winds reader threads down at their next poll.
        self.shutdown.store(true, Ordering::Release);
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(t) = self.engine_thread.take() {
            // The engine flushes its final cumulative acks before exiting,
            // so they are in the outbox queues when the drain starts.
            let _ = t.join();
        }
        if let Some(t) = self.acceptor_thread.take() {
            // Bounded by one accept quantum: joining proves the listener is
            // dropped, so the address is free the moment shutdown returns.
            let _ = t.join();
        }
        // Drain phase: flush every queue with a deadline and FIN each peer
        // as its queue empties, so neighbors trim their spools and restarts
        // don't open on avoidable retransmit storms. Stragglers past the
        // deadline are cut off; the sender pool winds down either way.
        self.outbox.drain_all(self.drain_timeout);
    }

    /// Crash-stops the node (fault injection): no final ack flush, no
    /// queue drain, no checkpoint — in-memory state dies as a power cut
    /// would take it, and the next start recovers from exactly what
    /// [`BrokerConfig::storage`] holds. Production shutdown is
    /// [`BrokerNode::shutdown`]; this exists so crash-consistency tests
    /// exercise the recovery path honestly.
    pub fn crash(mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = self.cmd_tx.send(Command::Crash);
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.acceptor_thread.take() {
            let _ = t.join();
        }
        // Instant transport teardown: queued frames (including any acks a
        // graceful drain would have delivered) are discarded, sockets FIN.
        self.outbox.close();
        // `Drop` still runs `shutdown_inner`, which is a no-op by now: the
        // threads are joined and `drain_all` on a closed outbox sees no
        // connections.
    }
}

impl Drop for BrokerNode {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for BrokerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerNode")
            .field("broker", &self.broker)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// An in-process connection to a broker (see [`BrokerNode::open_local`]).
pub struct LocalConn {
    conn: ConnId,
    cmd_tx: Sender<Command>,
    rx: Receiver<Bytes>,
    registry: Arc<SchemaRegistry>,
}

impl LocalConn {
    /// Sends a client-protocol message to the broker.
    pub fn send(&self, message: &ClientToBroker) {
        let frame = message.encode();
        // The engine expects the payload without the length prefix.
        let payload = frame.slice(4..);
        let _ = self.cmd_tx.send(Command::Frame(self.conn, payload));
    }

    /// Receives the next broker-protocol message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`crate::ClientError`] on timeout or malformed frames.
    pub fn recv(&self, timeout: Duration) -> Result<BrokerToClient, crate::ClientError> {
        let frame = self
            .rx
            .recv_timeout(timeout)
            .map_err(|_| crate::ClientError::Timeout)?;
        let payload = frame.slice(4..);
        BrokerToClient::decode(payload, &self.registry)
            .map_err(|e| crate::ClientError::Protocol(e.to_string()))
    }
}

impl Drop for LocalConn {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Command::Disconnected(self.conn));
    }
}

/// Mints a nonzero nonce for one broker lifetime: a process-wide counter
/// in the high bits (restarts within one process — the common test and
/// embedded-cluster case — always differ) salted with startup time in the
/// low bits (so counter collisions across separate processes still
/// differ in practice).
fn mint_incarnation() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    (COUNTER.fetch_add(1, Ordering::Relaxed) << 32) | (nanos & 0xffff_ffff)
}

/// Name of the broker's single write-ahead log inside its [`Storage`].
const WAL_LOG: &str = "wal";
/// Name of the broker's control-state snapshot slot.
const STATE_SNAPSHOT: &str = "state";
/// Upper bound on any count field in a snapshot. Snapshots are
/// self-written (never peer input), so a larger count only ever means
/// corruption — reject the snapshot rather than trust the length.
const MAX_SNAPSHOT_ITEMS: u32 = 1 << 24;

/// Durable-state bookkeeping on the engine thread (present only with
/// [`BrokerConfig::storage`] configured).
struct Durable {
    storage: Arc<dyn Storage>,
    /// WAL records appended since the last checkpoint; reaching
    /// [`BrokerConfig::snapshot_every`] triggers the next one.
    records_since_snapshot: u64,
    /// Reusable record-encoding buffer.
    buf: Vec<u8>,
}

/// Broker state rebuilt by [`recover`] (or minted fresh) and handed to
/// the engine loop at boot.
struct Recovered {
    incarnation: u64,
    sub_ids: SubIdAllocator,
    tombstones: TombstoneSet,
    recv_from: HashMap<BrokerId, NeighborRecv>,
    spools: HashMap<BrokerId, AckLog<Bytes>>,
    subscriptions: Vec<(SchemaId, Subscription)>,
}

impl Recovered {
    /// A fresh boot: new incarnation, empty state.
    fn fresh() -> Self {
        Recovered {
            incarnation: mint_incarnation(),
            sub_ids: SubIdAllocator::new(),
            tombstones: TombstoneSet::default(),
            recv_from: HashMap::new(),
            spools: HashMap::new(),
            subscriptions: Vec::new(),
        }
    }
}

/// Encodes the full control-state snapshot: incarnation, id allocator,
/// tombstones, per-neighbor receive windows (their *durable* marks — a
/// mark may never outrun the journaled effects it stands for), per-
/// neighbor spools (unacknowledged frames only), and the subscription
/// set. The layout is internal to this module; [`decode_snapshot`] is the
/// only reader.
fn encode_snapshot(
    incarnation: u64,
    sub_ids: &SubIdAllocator,
    tombstones: &TombstoneSet,
    recv_from: &HashMap<BrokerId, NeighborRecv>,
    spools: &HashMap<BrokerId, AckLog<Bytes>>,
    subscriptions: &[(SchemaId, Subscription)],
) -> Vec<u8> {
    let mut b: Vec<u8> = Vec::new();
    b.put_u64_le(incarnation);
    let (counter, free) = sub_ids.checkpoint();
    b.put_u32_le(counter);
    b.put_u32_le(free.len() as u32);
    for raw in free {
        b.put_u32_le(raw);
    }
    let tombs = tombstones.checkpoint();
    b.put_u32_le(tombs.len() as u32);
    for id in tombs {
        b.put_u32_le(id.raw());
    }
    b.put_u32_le(recv_from.len() as u32);
    for (broker, recv) in recv_from {
        b.put_u32_le(broker.raw());
        b.put_u64_le(recv.peer_incarnation);
        b.put_u64_le(recv.durable_seq);
    }
    b.put_u32_le(spools.len() as u32);
    for (broker, spool) in spools {
        b.put_u32_le(broker.raw());
        let acked = spool.acked();
        b.put_u64_le(acked);
        let frames: Vec<&Bytes> = spool.replay_after(acked).map(|(_, f)| f).collect();
        b.put_u32_le(frames.len() as u32);
        for frame in frames {
            b.put_u32_le(frame.len() as u32);
            b.extend_from_slice(frame);
        }
    }
    b.put_u32_le(subscriptions.len() as u32);
    for (schema, subscription) in subscriptions {
        b.put_u32_le(schema.raw());
        wire::put_subscription(&mut b, subscription);
    }
    b
}

/// Reads a length-prefixed count, rejecting corrupt (absurdly large)
/// values before any caller sizes a loop by them.
fn snap_count(buf: &mut &[u8]) -> Option<u32> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le();
    if n > MAX_SNAPSHOT_ITEMS {
        return None;
    }
    Some(n)
}

/// Decodes a snapshot written by [`encode_snapshot`]. Returns `None` on
/// any structural violation: the caller falls back to a fresh boot (a new
/// incarnation makes the discarded sequence space inert network-wide,
/// so a corrupt snapshot costs durability, never correctness).
fn decode_snapshot(mut data: &[u8], registry: &SchemaRegistry) -> Option<Recovered> {
    let buf = &mut data;
    if buf.remaining() < 8 + 4 {
        return None;
    }
    let incarnation = buf.get_u64_le();
    let counter = buf.get_u32_le();
    let n_free = snap_count(buf)?;
    let mut free = Vec::new();
    for _ in 0..n_free {
        if buf.remaining() < 4 {
            return None;
        }
        free.push(buf.get_u32_le());
    }
    let sub_ids = SubIdAllocator::restore(counter, free);
    let n_tombs = snap_count(buf)?;
    let mut tombstones = TombstoneSet::default();
    for _ in 0..n_tombs {
        if buf.remaining() < 4 {
            return None;
        }
        tombstones.insert(SubscriptionId::new(buf.get_u32_le()));
    }
    let n_recv = snap_count(buf)?;
    let mut recv_from = HashMap::new();
    for _ in 0..n_recv {
        if buf.remaining() < 4 + 8 + 8 {
            return None;
        }
        let broker = BrokerId::new(buf.get_u32_le());
        let peer_incarnation = buf.get_u64_le();
        let seq = buf.get_u64_le();
        recv_from.insert(
            broker,
            NeighborRecv {
                seq,
                durable_seq: seq,
                acked_sent: 0,
                peer_incarnation,
            },
        );
    }
    let n_spools = snap_count(buf)?;
    let mut spools = HashMap::new();
    for _ in 0..n_spools {
        if buf.remaining() < 4 + 8 {
            return None;
        }
        let broker = BrokerId::new(buf.get_u32_le());
        let acked = buf.get_u64_le();
        let mut spool = AckLog::with_base(acked);
        let n_frames = snap_count(buf)?;
        for _ in 0..n_frames {
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32_le() as usize;
            if len > crate::protocol::MAX_FRAME {
                return None;
            }
            let head = buf.get(..len)?;
            spool.append(Bytes::copy_from_slice(head));
            buf.advance(len);
        }
        spools.insert(broker, spool);
    }
    let n_subs = snap_count(buf)?;
    let mut subscriptions = Vec::new();
    for _ in 0..n_subs {
        if buf.remaining() < 4 {
            return None;
        }
        let schema_id = SchemaId::new(buf.get_u32_le());
        let schema = registry.get(schema_id)?;
        let subscription = wire::get_subscription(buf, schema).ok()?;
        subscriptions.push((schema_id, subscription));
    }
    Some(Recovered {
        incarnation,
        sub_ids,
        tombstones,
        recv_from,
        spools,
        subscriptions,
    })
}

/// Rebuilds broker state from storage: snapshot first, then the WAL
/// suffix replayed idempotently on top (duplicate appends dedup by
/// sequence, receive marks and trims are cumulative). Torn or corrupt
/// tail records are discarded, never replayed as data. A missing or
/// undecodable snapshot falls back to a fresh boot — with a *new*
/// incarnation, so nothing of the dead sequence space leaks.
fn recover(
    st: &dyn Storage,
    registry: &SchemaRegistry,
    stats: &StatsInner,
) -> std::io::Result<Recovered> {
    let snap = st.read_snapshot(STATE_SNAPSHOT)?;
    let wal = st.read(WAL_LOG)?;
    let had_state = snap.is_some() || !wal.is_empty();
    let mut recovered = snap
        .and_then(|bytes| decode_snapshot(&bytes, registry))
        .unwrap_or_else(Recovered::fresh);
    let (records, torn) = storage::decode_records(&wal);
    stats
        .torn_records_discarded
        .fetch_add(torn, Ordering::Relaxed);
    'records: for record in records {
        let Some(ops) = storage::decode_ops(&record) else {
            // CRC-valid but semantically undecodable: version skew or a
            // writer bug. Everything after it is unordered relative to the
            // lost batch, so stop — same policy as a torn tail.
            stats.torn_records_discarded.fetch_add(1, Ordering::Relaxed);
            break 'records;
        };
        stats.wal_replayed.fetch_add(1, Ordering::Relaxed);
        for op in ops {
            match op {
                WalOp::RecvMark {
                    from,
                    incarnation,
                    seq,
                } => {
                    let recv = recovered.recv_from.entry(BrokerId::new(from)).or_default();
                    if recv.peer_incarnation == incarnation {
                        recv.seq = recv.seq.max(seq);
                    } else {
                        // The peer restarted after the snapshot: later
                        // marks count a fresh sequence space.
                        recv.peer_incarnation = incarnation;
                        recv.seq = seq;
                    }
                    recv.durable_seq = recv.seq;
                }
                WalOp::Append {
                    neighbor,
                    seq,
                    frame,
                } => {
                    let spool = recovered.spools.entry(BrokerId::new(neighbor)).or_default();
                    // Idempotent replay: a record surviving both in the
                    // boot snapshot and in an untruncated WAL (cut between
                    // snapshot-commit and truncate) must not double-append.
                    if seq == spool.last_seq() + 1 {
                        spool.append(frame);
                    }
                }
                WalOp::Trim { neighbor, acked } => {
                    if let Some(spool) = recovered.spools.get_mut(&BrokerId::new(neighbor)) {
                        spool.ack(acked);
                        spool.collect();
                    }
                }
            }
        }
    }
    if had_state {
        stats.recoveries.fetch_add(1, Ordering::Relaxed);
    }
    Ok(recovered)
}

struct EngineLoop {
    config: BrokerConfig,
    /// This broker lifetime's nonce, announced in every link `Hello` so
    /// peers can tell a restart (fresh sequence space, empty spool) from
    /// a mere reconnect. See [`BrokerToBroker::Hello`].
    incarnation: u64,
    engine: Arc<RwLock<MatchingEngine>>,
    outbox: Arc<Outbox>,
    stats: Arc<StatsInner>,
    /// Per-shard matching cost (slot 0 doubles as the inline path's slot).
    match_stats: Arc<Vec<Mutex<MatchStats>>>,
    /// Matching-worker inboxes; empty means matching runs inline.
    shard_txs: Vec<Sender<MatchJob>>,
    /// The inline path's match-result cache (engine-thread-owned; the
    /// worker shards each own their own — no lock anywhere).
    match_cache: MatchCache,
    /// The inline path's reusable matching buffers (scratch masks, walk
    /// frames, parallel worker state).
    route_scratch: RouteScratch,
    conns: HashMap<ConnId, Peer>,
    clients: HashMap<ClientId, ClientState>,
    neighbors: HashMap<BrokerId, ConnId>,
    /// Dialed neighbor conns whose peer `Hello` has not arrived yet.
    /// `Forward` traffic is held back (it stays in the spool) until the
    /// handshake completes: sending fresh higher-seq frames before
    /// `retransmit_spool` replays the backlog would make the receiver's
    /// cumulative dedup drop the retransmissions as duplicates — silent
    /// event loss on every reconnect that overlaps a dispatch.
    awaiting_hello: HashSet<ConnId>,
    /// Per-neighbor send-side spool: stitched `Forward` frames retained
    /// until the neighbor's cumulative `FwdAck`, replayed after a link
    /// flap. Keyed by broker (not conn) so the spool survives the link.
    spools: HashMap<BrokerId, AckLog<Bytes>>,
    /// Per-neighbor receive-side sequence window for dedup and ack pacing.
    recv_from: HashMap<BrokerId, NeighborRecv>,
    /// Removed subscription ids, so the anti-entropy resync cannot
    /// resurrect an unsubscribe that flooded while a link was down.
    tombstones: TombstoneSet,
    sub_ids: SubIdAllocator,
    /// When each connection last produced a frame (any frame — heartbeats
    /// only guarantee an idle link still produces *some*). The heartbeat
    /// tick reads the broker-link entries; client entries exist only so
    /// `handle_frame` can update blindly, and are dropped in `forget_conn`.
    last_heard: HashMap<ConnId, std::time::Instant>,
    /// Current heartbeat probe interval in milliseconds (shared with the
    /// ticker thread; retunable via [`BrokerNode::set_heartbeat_interval`]).
    heartbeat_ms: Arc<AtomicU64>,
    /// WAL + snapshot bookkeeping; `None` without
    /// [`BrokerConfig::storage`], and every journaling call is a no-op.
    durable: Option<Durable>,
    /// The routing fabric currently in force: [`BrokerConfig::fabric`]
    /// at boot, swapped for a rebuild over the surviving graph on every
    /// topology repair. Routing, dispatch, and the tree-bound check all
    /// read this — never `config.fabric` — so a repair cuts the whole
    /// data plane over atomically (single-threaded engine loop).
    fabric: Arc<RoutingFabric>,
    /// Flooded link-state statements folded into per-edge versions; the
    /// source of truth for `epoch` and the dead-edge exclusion set.
    link_state: crate::repair::LinkStateTable,
    /// Current topology epoch (`link_state.epoch()`), stitched into
    /// every outgoing `Forward` frame and compared against incoming
    /// ones. Plain engine-thread copy of `epoch_gauge`.
    epoch: u64,
    /// Shared copy of `epoch` for [`BrokerNode::stats`].
    epoch_gauge: Arc<AtomicU64>,
    /// Per-neighbor splitmix64 state for jittering the heartbeat ping
    /// schedule, seeded deterministically per (local, neighbor) pair —
    /// same rationale as the redial jitter: without it every broker
    /// pings every link on the same clock edge and the probe traffic
    /// arrives mesh-wide in lockstep bursts.
    ping_jitter: HashMap<BrokerId, u64>,
}

/// Receive-side state for one neighbor link.
#[derive(Debug, Default)]
struct NeighborRecv {
    /// Highest event sequence accepted from this neighbor. Lower or equal
    /// sequences are retransmissions and are dropped (the link is a TCP
    /// stream, so arrival is FIFO and a cumulative mark suffices).
    seq: u64,
    /// Highest sequence whose receive mark is durable (equal to `seq`
    /// when no storage is configured). Acks and `Hello` high-water marks
    /// advertise *this*, never `seq`: an ack makes the peer trim its
    /// spool, so it must only cover frames a crash here cannot lose.
    durable_seq: u64,
    /// Highest sequence we have acknowledged back to the neighbor.
    acked_sent: u64,
    /// The neighbor incarnation `seq` was accumulated under (0 = none
    /// seen yet). A handshake announcing a different incarnation resets
    /// the window: the neighbor restarted, its sequence space is fresh,
    /// and the old high-water mark would dedup-drop live frames.
    peer_incarnation: u64,
}

impl EngineLoop {
    fn run(mut self, cmd_rx: Receiver<Command>) {
        for command in cmd_rx.iter() {
            match command {
                Command::Frame(conn, payload) => self.handle_frame(conn, payload),
                Command::DialedNeighbor(conn, neighbor) => {
                    self.conns.insert(conn, Peer::Broker(neighbor));
                    self.install_neighbor_conn(neighbor, conn);
                    // Start the liveness clock: the peer owes us its Hello.
                    self.last_heard.insert(conn, std::time::Instant::now());
                    // Control traffic (Hello, resync, floods) flows right
                    // away, but Forward dispatch stays spooled-only until
                    // the peer's Hello arrives and the spool is replayed —
                    // see `awaiting_hello`.
                    self.awaiting_hello.insert(conn);
                    self.send_hello(conn, neighbor);
                    self.resync_subscriptions(conn);
                    // Link-state statements must precede any spool
                    // retransmission on this conn (FIFO link): a peer
                    // that rebooted at epoch 0 flips forward before it
                    // processes replayed frames stitched under the
                    // current epoch.
                    self.resync_link_state(conn);
                }
                Command::Disconnected(conn) => self.handle_disconnect(conn),
                Command::Routed {
                    event,
                    tree,
                    body,
                    links,
                    source,
                    epoch,
                } => {
                    if epoch == self.epoch {
                        self.dispatch(&event, tree, &body, links, source);
                    } else {
                        // The shard matched under a topology that has
                        // since been repaired: its links may cross dead
                        // edges or miss the new trees. Discard them and
                        // re-match inline under the current engine.
                        self.rematch_stale(&event, &body, source);
                    }
                }
                Command::LinkUnreachable(neighbor) => self.handle_link_unreachable(neighbor),
                Command::GcTick => self.collect_garbage(),
                Command::HeartbeatTick => self.heartbeat_tick(),
                Command::QueueOverflow(conn) => self.handle_queue_overflow(conn),
                Command::Shutdown => {
                    // Final courtesy: push cumulative acks for everything
                    // received but not yet acked, so surviving neighbors
                    // trim their spools instead of retransmitting the tail
                    // at our restart. The frames flush in the drain phase.
                    self.flush_forward_acks();
                    break;
                }
                Command::Crash => {
                    // Fault injection: die as a power cut would — no ack
                    // flush, no checkpoint. Whatever the WAL and the last
                    // snapshot hold is what recovery gets.
                    break;
                }
            }
        }
        // Dropping self drops the shard senders; workers drain and exit.
    }

    fn handle_frame(&mut self, conn: ConnId, payload: Bytes) {
        let Some(&tag) = payload.first() else {
            return;
        };
        // Any decodable-or-not frame proves the peer's send path is alive;
        // the heartbeat tick consumes this for broker links.
        self.last_heard.insert(conn, std::time::Instant::now());
        if tag < 0x10 {
            // `payload` is cloned (a refcount bump) so the data-plane arms
            // can slice the already-encoded event body out of it instead of
            // re-serializing the decoded event.
            match ClientToBroker::decode(payload.clone(), &self.config.registry) {
                Ok(ClientToBroker::Publish { event }) => {
                    let body = payload.slice(protocol::PUBLISH_BODY_OFFSET..);
                    self.handle_publish(conn, event, body);
                }
                Ok(msg) => self.handle_client(conn, msg),
                Err(e) => self.protocol_error_disconnect(conn, e.to_string()),
            }
        } else if (0x21..=0x2f).contains(&tag) {
            match BrokerToBroker::decode(payload.clone(), &self.config.registry) {
                Ok(BrokerToBroker::Forward {
                    tree,
                    seq,
                    epoch,
                    event,
                }) => {
                    let body = payload.slice(protocol::FORWARD_BODY_OFFSET..);
                    self.handle_forward(conn, tree, seq, epoch, event, body);
                }
                Ok(msg) => self.handle_broker(conn, msg),
                Err(e) => self.protocol_error_disconnect(conn, e.to_string()),
            }
        } else {
            self.protocol_error_disconnect(conn, format!("unexpected message tag {tag:#x}"));
        }
    }

    /// A peer sent something undecodable. A corrupt payload means the
    /// stream's framing can no longer be trusted, so rather than guess at
    /// the next message boundary the broker counts the error and drops the
    /// connection — the socket shutdown is what the peer observes (a
    /// dialing neighbor's link supervisor sees the EOF and redials with a
    /// fresh handshake). Clients additionally get the reason as an `Error`
    /// frame, flushed before the FIN; broker peers do not, because
    /// `BrokerToClient::Error` is an unexpected tag on a broker-broker
    /// link and would itself count as a protocol error on the remote side.
    /// Semantically invalid but *well-formed* requests (unknown schema on
    /// subscribe, publish before hello) go through `client_error` instead
    /// and keep the connection.
    fn protocol_error_disconnect(&mut self, conn: ConnId, message: String) {
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        if matches!(self.conns.get(&conn), Some(Peer::Broker(_))) {
            self.handle_disconnect(conn);
            return;
        }
        self.client_error(conn, message);
        self.outbox.close_after_flush(conn);
        self.forget_conn(conn);
    }

    fn handle_publish(&mut self, conn: ConnId, event: Event, body: Bytes) {
        if self.client_of(conn).is_none() {
            self.client_error(conn, "publish before hello".into());
            return;
        }
        // Reject events too large to re-stitch as Forward/Deliver frames
        // before they enter routing; an unchecked body would either
        // truncate the `u32` length prefix or flap the downstream link
        // (retransmit → peer reject → disconnect → retransmit) forever.
        if let Err(e) = crate::protocol::check_event_body(body.len()) {
            self.client_error(conn, e.to_string());
            return;
        }
        let tree = match self.fabric.tree_for(self.config.broker) {
            Ok(t) => t,
            Err(e) => {
                self.client_error(conn, e.to_string());
                return;
            }
        };
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        self.route_and_dispatch(event, tree, body, None);
    }

    fn handle_client(&mut self, conn: ConnId, message: ClientToBroker) {
        match message {
            ClientToBroker::Hello {
                client,
                resume_from,
            } => {
                let home = self.config.fabric.network().home_broker(client);
                if home != Some(self.config.broker) {
                    self.client_error(
                        conn,
                        format!(
                            "client {client} is not homed at broker {}",
                            self.config.broker
                        ),
                    );
                    return;
                }
                self.conns.insert(conn, Peer::Client(client));
                let state = self.clients.entry(client).or_insert_with(|| ClientState {
                    conn: None,
                    log: EventLog::new(),
                    disconnected_at: None,
                });
                state.conn = Some(conn);
                state.disconnected_at = None;
                state.log.ack(resume_from);
                let acked = state.log.acked();
                self.outbox.send(
                    conn,
                    BrokerToClient::Welcome {
                        client,
                        resume_from: acked,
                    }
                    .encode(),
                );
                // Replay what the client missed while disconnected.
                let frames: Vec<Bytes> = state
                    .log
                    .replay_after(acked)
                    .map(|(seq, event)| {
                        BrokerToClient::Deliver {
                            seq,
                            event: event.clone(),
                        }
                        .encode()
                    })
                    .collect();
                for frame in frames {
                    self.outbox.send(conn, frame);
                }
            }
            ClientToBroker::Subscribe { schema, expression } => {
                let Some(client) = self.client_of(conn) else {
                    self.client_error(conn, "subscribe before hello".into());
                    return;
                };
                let predicate = match self.engine.read().parse_subscription(schema, &expression) {
                    Ok(p) => p,
                    Err(e) => {
                        self.client_error(conn, e.to_string());
                        return;
                    }
                };
                // Globally unique id: 12 bits of broker, 20 bits of
                // per-broker counter (recycled after unsubscribe, so churn
                // never wedges the broker — only concurrency is capped).
                let Some(raw) = self.sub_ids.allocate() else {
                    self.client_error(conn, "subscription id space exhausted".into());
                    return;
                };
                let id = SubscriptionId::new((self.config.broker.raw() << SUB_COUNTER_BITS) | raw);
                // A recycled id must not be shadowed by its previous life's
                // tombstone.
                self.tombstones.remove(id);
                let subscription =
                    Subscription::new(id, SubscriberId::new(self.config.broker, client), predicate);
                let result = {
                    let mut engine = self.engine.write();
                    let r = engine.subscribe(schema, subscription.clone());
                    (r, engine.subscription_count())
                };
                match result.0 {
                    Ok(()) => {
                        self.stats
                            .subscriptions
                            .store(result.1 as u64, Ordering::Relaxed);
                        self.outbox
                            .send(conn, BrokerToClient::SubAck { id }.encode());
                        // Control plane: flood to every neighbor.
                        self.flood_broker_message(
                            &BrokerToBroker::SubAdd {
                                schema,
                                subscription,
                                resync: false,
                            },
                            None,
                        );
                        self.checkpoint_subscriptions();
                    }
                    Err(e) => self.client_error(conn, e.to_string()),
                }
            }
            ClientToBroker::Unsubscribe { id } => {
                let Some(client) = self.client_of(conn) else {
                    self.client_error(conn, "unsubscribe before hello".into());
                    return;
                };
                let owned = self
                    .engine
                    .read()
                    .subscription(id)
                    .is_some_and(|s| s.subscriber().client == client);
                if !owned {
                    self.client_error(conn, format!("subscription {id} is not yours"));
                    return;
                }
                let remaining = {
                    let mut engine = self.engine.write();
                    engine.unsubscribe(id);
                    engine.subscription_count()
                };
                self.stats
                    .subscriptions
                    .store(remaining as u64, Ordering::Relaxed);
                // Tombstone the id (so a resync while some link is down
                // cannot resurrect it) and recycle its counter half.
                self.tombstones.insert(id);
                self.sub_ids.free(id.raw() & (SUB_ID_SPACE - 1));
                self.outbox
                    .send(conn, BrokerToClient::UnsubAck { id }.encode());
                self.flood_broker_message(&BrokerToBroker::SubRemove { id }, None);
                self.checkpoint_subscriptions();
            }
            ClientToBroker::Publish { event } => {
                // Normally intercepted in `handle_frame` with the body
                // sliced from the wire; this arm only serves locally
                // constructed messages, so it pays one serialization.
                let body = protocol::encode_event_body(&event);
                self.handle_publish(conn, event, body);
            }
            ClientToBroker::Ack { seq } => {
                if let Some(client) = self.client_of(conn) {
                    if let Some(state) = self.clients.get_mut(&client) {
                        state.log.ack(seq);
                    }
                }
            }
            ClientToBroker::StatsRequest => {
                let mut matching = MatchStats::new();
                for shard_stats in self.match_stats.iter() {
                    matching += *shard_stats.lock();
                }
                // `subscriptions` reads the stored gauge rather than
                // re-counting under the engine lock; it is refreshed on
                // every subscription change.
                let counters = self.stats.counters(Derived {
                    match_cache_hits: matching.cache_hits,
                    match_cache_misses: matching.cache_misses,
                    match_cache_invalidations: matching.cache_invalidations,
                });
                let frame = BrokerToClient::Stats(counters).encode();
                self.outbox.send(conn, frame);
            }
        }
    }

    fn handle_broker(&mut self, conn: ConnId, message: BrokerToBroker) {
        match message {
            BrokerToBroker::Hello {
                broker,
                incarnation,
                last_recv,
                last_recv_incarnation,
                send_seq,
            } => {
                // Reply with our own handshake only on a conn we have not
                // already greeted (the dialer side greeted on
                // `DialedNeighbor`); otherwise the pair would ping-pong
                // Hellos forever.
                let known = matches!(self.conns.get(&conn), Some(Peer::Broker(b)) if *b == broker);
                self.conns.insert(conn, Peer::Broker(broker));
                self.install_neighbor_conn(broker, conn);
                // Handshake complete: retransmit_spool (below) replays the
                // backlog over this conn, after which dispatch may send
                // fresh frames on it directly.
                self.awaiting_hello.remove(&conn);
                let recv = self.recv_from.entry(broker).or_default();
                if recv.peer_incarnation != incarnation {
                    // A new peer lifetime (restart, or first contact): its
                    // sequence space starts over, so the old high-water
                    // mark is meaningless — holding onto it would dedup-
                    // drop the fresh stream.
                    recv.peer_incarnation = incarnation;
                    recv.seq = 0;
                    recv.durable_seq = 0;
                    recv.acked_sent = 0;
                } else if send_seq < recv.seq {
                    // Same lifetime but its send sequence regressed —
                    // should be impossible, kept as an independent guard
                    // against the silent-drop failure mode.
                    recv.seq = send_seq;
                    recv.durable_seq = recv.durable_seq.min(send_seq);
                    recv.acked_sent = recv.acked_sent.min(send_seq);
                }
                if !known {
                    self.send_hello(conn, broker);
                    // Anti-entropy: a (re-)connecting neighbor may have
                    // missed subscription traffic (e.g. it restarted);
                    // replay the full set. Duplicates are dropped by the
                    // flood dedup, dead ids by the tombstone filter.
                    self.resync_subscriptions(conn);
                    // Same for link-state statements, and strictly before
                    // the spool retransmission below: the peer must reach
                    // our epoch before it processes replayed frames.
                    self.resync_link_state(conn);
                }
                // The peer's `last_recv` is also a cumulative ack: trim the
                // spool, then retransmit everything it missed. But only if
                // it counts *our* frames: a mark recorded against an
                // earlier incarnation of us refers to a dead sequence
                // space — trimming by it would discard frames the peer
                // never saw (e.g. a frame spooled right after restart,
                // "acked" by a stale mark the old lifetime earned).
                let effective_last_recv = if last_recv_incarnation == self.incarnation {
                    last_recv
                } else {
                    0
                };
                // Apply the ack before any repair flip below: frames the
                // peer already received must not look pending to the epoch
                // flip's re-homing sweep, or they would be re-dispatched
                // as duplicates.
                if let Some(spool) = self.spools.get_mut(&broker) {
                    spool.ack(effective_last_recv);
                    spool.collect();
                    let acked = spool.acked();
                    self.wal_commit_trim(broker, acked);
                }
                // A Hello on this link proves the edge is live again: if
                // our table says it is down, originate the LinkUp
                // statement. Both endpoints may do so concurrently — the
                // strictly-monotone apply test makes the duplicate
                // converge instead of ping-ponging.
                let me = self.config.broker;
                let (a, b) = crate::repair::normalize_edge(me, broker);
                let (ver, down) = self.link_state.get(a, b);
                if down {
                    self.apply_link_state(a, b, ver.saturating_add(1), false, None);
                }
                self.retransmit_spool(broker, conn, effective_last_recv);
            }
            BrokerToBroker::FwdAck { seq } => {
                if let Some(Peer::Broker(broker)) = self.conns.get(&conn) {
                    let broker = *broker;
                    let acked = if let Some(spool) = self.spools.get_mut(&broker) {
                        spool.ack(seq);
                        spool.collect();
                        Some(spool.acked())
                    } else {
                        None
                    };
                    if let Some(acked) = acked {
                        self.wal_commit_trim(broker, acked);
                    }
                }
            }
            BrokerToBroker::Forward {
                tree,
                seq,
                epoch,
                event,
            } => {
                // Normally intercepted in `handle_frame` with the body
                // sliced from the wire; this arm only serves locally
                // constructed messages, so it pays one serialization.
                let body = protocol::encode_event_body(&event);
                self.handle_forward(conn, tree, seq, epoch, event, body);
            }
            BrokerToBroker::SubAdd {
                schema,
                subscription,
                resync,
            } => {
                let id = subscription.id();
                // A resynced add may be a resurrection: the neighbor never
                // saw the `SubRemove` that flooded while its link was down.
                // Ignoring it is not enough — the neighbor (and everything
                // behind it) still *holds* the stale subscription and would
                // keep routing on it forever. Push the removal back on the
                // same link; the receiver un-installs it and floods the
                // removal onward, so the partition-missed `SubRemove`
                // finally reaches every stale copy.
                if resync && self.tombstones.contains(id) {
                    self.outbox
                        .send(conn, BrokerToBroker::SubRemove { id }.encode());
                    return;
                }
                if self.engine.read().knows(id) {
                    return; // flood dedup on cyclic broker graphs
                }
                if !resync {
                    // A fresh add recycles the id: its previous life's
                    // tombstone no longer applies.
                    self.tombstones.remove(id);
                }
                let (installed, count) = {
                    let mut engine = self.engine.write();
                    let ok = engine.subscribe(schema, subscription.clone()).is_ok();
                    (ok, engine.subscription_count())
                };
                if installed {
                    self.stats
                        .subscriptions
                        .store(count as u64, Ordering::Relaxed);
                    self.flood_broker_message(
                        &BrokerToBroker::SubAdd {
                            schema,
                            subscription,
                            resync,
                        },
                        Some(conn),
                    );
                    self.checkpoint_subscriptions();
                } else {
                    debug_assert!(false, "replicated subscription {id} failed to install");
                }
            }
            BrokerToBroker::Ping => {
                // Answer on the same conn: the pong's arrival refreshes the
                // peer's liveness clock for this link.
                self.outbox.send(conn, BrokerToBroker::Pong.encode());
            }
            BrokerToBroker::Pong => {
                // Its arrival already refreshed `last_heard` in
                // `handle_frame`; there is nothing else to do.
            }
            BrokerToBroker::LinkDown { a, b, ver } => {
                self.handle_link_statement(conn, a, b, ver, true);
            }
            BrokerToBroker::LinkUp { a, b, ver } => {
                self.handle_link_statement(conn, a, b, ver, false);
            }
            BrokerToBroker::SubRemove { id } => {
                // Tombstone-insert doubles as flood dedup: a removal we
                // already tombstoned has already been flooded onward.
                let newly_tombstoned = self.tombstones.insert(id);
                let (removed, count) = {
                    let mut engine = self.engine.write();
                    let ok = engine.unsubscribe(id);
                    (ok, engine.subscription_count())
                };
                if removed {
                    self.stats
                        .subscriptions
                        .store(count as u64, Ordering::Relaxed);
                }
                if removed || newly_tombstoned {
                    self.flood_broker_message(&BrokerToBroker::SubRemove { id }, Some(conn));
                    self.checkpoint_subscriptions();
                }
            }
        }
    }

    /// Makes `conn` the single live conn for `broker`, tearing down any
    /// older conn to the same neighbor. Exactly one TCP stream per
    /// neighbor may carry sequenced `Forward` traffic: if an old stream
    /// lingered (e.g. its death is still undetected when the peer redials),
    /// frames could interleave across two streams and break the
    /// FIFO-arrival assumption the cumulative seq dedup relies on.
    fn install_neighbor_conn(&mut self, broker: BrokerId, conn: ConnId) {
        if let Some(old) = self.neighbors.insert(broker, conn) {
            if old != conn {
                self.outbox.unregister(old);
                self.conns.remove(&old);
                self.awaiting_hello.remove(&old);
                self.last_heard.remove(&old);
            }
        }
    }

    /// Sends the link handshake: our receive high-water mark (so the peer
    /// trims and retransmits its spool) and our send sequence (so the peer
    /// can detect that we restarted and reset its dedup window).
    fn send_hello(&mut self, conn: ConnId, neighbor: BrokerId) {
        // Advertise the *durable* receive mark: the peer trims its spool
        // by it, so it must never cover frames a crash here could lose.
        let (last_recv, last_recv_incarnation) = self
            .recv_from
            .get(&neighbor)
            .map_or((0, 0), |r| (r.durable_seq, r.peer_incarnation));
        let send_seq = self.spools.get(&neighbor).map_or(0, |s| s.last_seq());
        self.outbox.send(
            conn,
            BrokerToBroker::Hello {
                broker: self.config.broker,
                incarnation: self.incarnation,
                last_recv,
                last_recv_incarnation,
                send_seq,
            }
            .encode(),
        );
    }

    /// Trims the spool for `neighbor` to the peer's cumulative `last_recv`
    /// and retransmits every frame past it over `conn`.
    fn retransmit_spool(&mut self, neighbor: BrokerId, conn: ConnId, last_recv: u64) {
        let Some(spool) = self.spools.get_mut(&neighbor) else {
            return;
        };
        spool.ack(last_recv);
        spool.collect();
        let acked = spool.acked();
        let frames: Vec<Bytes> = spool
            .replay_after(acked)
            .map(|(_, frame)| frame.clone())
            .collect();
        self.wal_commit_trim(neighbor, acked);
        if frames.is_empty() {
            return;
        }
        self.stats
            .retransmitted
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        for frame in frames {
            self.outbox.send(conn, frame);
        }
    }

    /// An inbound `Forward`: dedup against the per-neighbor receive window,
    /// pace a cumulative `FwdAck` back, then route.
    fn handle_forward(
        &mut self,
        conn: ConnId,
        tree: TreeId,
        seq: u64,
        epoch: u64,
        event: Event,
        body: Bytes,
    ) {
        // Epoch check FIRST, before the tree-bound check: a frame stitched
        // under a different topology epoch refers to trees that no longer
        // exist here (its tree index may not even be in range of the
        // repaired forest). Dropping it is safe precisely because it is
        // *not* acked and does *not* advance the receive window: the frame
        // stays pending in the sender's spool, and the sender's own epoch
        // flip re-homes every pending frame down its repaired trees (see
        // `rehome_spools` and DESIGN.md §15).
        if epoch != self.epoch {
            self.stats.stale_epoch_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // The tree id arrives as a raw index; an out-of-range value from a
        // corrupt or hostile peer would panic deep inside the matching
        // engine's per-tree tables. Treat it like any other undecodable
        // frame: count it and cut the link.
        if tree.index() >= self.fabric.forest().len() {
            self.protocol_error_disconnect(
                conn,
                format!("forward on unknown spanning tree {}", tree.index()),
            );
            return;
        }
        let source;
        {
            let Some(Peer::Broker(broker)) = self.conns.get(&conn) else {
                // Not a registered broker peer — most likely an old stream
                // torn down when the neighbor redialed (see
                // `install_neighbor_conn`). Routing it would bypass the
                // dedup window; drop it instead (the live stream replays
                // anything unacknowledged).
                return;
            };
            let broker = *broker;
            let journaling = self.durable.is_some();
            let recv = self.recv_from.entry(broker).or_default();
            if seq <= recv.seq {
                // A retransmission of a frame that already crossed before
                // the flap: the spool is at-least-once, dedup restores
                // exactly-once into the routing layer.
                return;
            }
            recv.seq = seq;
            source = Some((broker, seq, recv.peer_incarnation));
            if !journaling {
                // Without storage the receive mark is "durable" the moment
                // it lands in memory; with storage, `dispatch` advances
                // `durable_seq` (and paces the ack) only after the WAL
                // record holding this mark has committed.
                recv.durable_seq = seq;
                if recv.durable_seq - recv.acked_sent >= FWD_ACK_EVERY {
                    recv.acked_sent = recv.durable_seq;
                    let ack = BrokerToBroker::FwdAck {
                        seq: recv.acked_sent,
                    }
                    .encode();
                    self.outbox.send(conn, ack);
                }
            }
        }
        self.route_and_dispatch(event, tree, body, source);
    }

    /// Link matching plus dispatch. `body` is the event's wire encoding
    /// (sliced from the incoming frame, or encoded exactly once for local
    /// messages); it rides through matching untouched so dispatch can
    /// stitch outgoing frames without re-serializing.
    ///
    /// With matching workers configured, the match runs on the shard owning
    /// the event's information space and the link set comes back as
    /// [`Command::Routed`]; otherwise everything happens inline, in arrival
    /// order.
    fn route_and_dispatch(
        &mut self,
        event: Event,
        tree: TreeId,
        body: Bytes,
        source: Option<(BrokerId, u64, u64)>,
    ) {
        if let Some(tx) = {
            let shards = self.shard_txs.len();
            (shards > 0).then(|| event.schema().id().raw() as usize % shards)
        }
        .and_then(|shard| self.shard_txs.get(shard))
        {
            let _ = tx.send(MatchJob {
                event,
                tree,
                body,
                source,
                epoch: self.epoch,
            });
            return;
        }
        let links = self.route_inline(&event, tree);
        self.dispatch(&event, tree, &body, links, source);
    }

    /// The inline matching path: the engine-thread-owned cache and
    /// scratch buffers, cost accounted to shard slot 0. Factored out of
    /// [`route_and_dispatch`](Self::route_and_dispatch) because the
    /// repair paths (stale shard results, spool re-homing) must re-match
    /// synchronously under the current topology regardless of the
    /// configured shard count.
    fn route_inline(&mut self, event: &Event, tree: TreeId) -> Vec<LinkId> {
        let mut stats = MatchStats::new();
        let mut links = Vec::new();
        if self.config.match_arena {
            self.engine.read().route_cached(
                event,
                tree,
                self.config.match_threads,
                &mut self.match_cache,
                &mut self.route_scratch,
                &mut stats,
                &mut links,
            );
        } else {
            links = self.engine.read().route_parallel(
                event,
                tree,
                self.config.match_threads,
                &mut stats,
            );
        }
        if let Some(shard_stats) = self.match_stats.first() {
            *shard_stats.lock() += stats;
        }
        links
    }

    /// A matching-worker shard handed back a link set computed under a
    /// topology epoch that has since flipped: the links may cross dead
    /// edges or miss the repaired trees entirely. The shard's answer is
    /// discarded and the event re-matched inline under this broker's own
    /// tree in the current fabric — correct for delivery (the tree spans
    /// every reachable broker) at the cost of possibly re-covering
    /// subtrees the old dispatch already reached; the transition window
    /// is at-least-once by design (receiver dedup and client logs keep
    /// client-visible delivery exactly-once in the quiescent cases, see
    /// DESIGN.md §15). The link back toward the frame's source is
    /// excluded — the tree discipline never returns an event to its
    /// sender.
    fn rematch_stale(&mut self, event: &Event, body: &Bytes, source: Option<(BrokerId, u64, u64)>) {
        self.stats.rerouted_frames.fetch_add(1, Ordering::Relaxed);
        let Ok(tree) = self.fabric.tree_for(self.config.broker) else {
            return;
        };
        let mut links = self.route_inline(event, tree);
        if let Some((from, _, _)) = source {
            let fabric = Arc::clone(&self.fabric);
            let network = fabric.network();
            links.retain(|&link| {
                !matches!(
                    network.link_target(self.config.broker, link),
                    LinkTarget::Broker(n) if n == from
                )
            });
        }
        self.dispatch(event, tree, body, links, source);
    }

    /// Dispatches a routed event: per-neighbor `Forward` frames (each link
    /// carries its own sequence header around the shared, already-encoded
    /// body) and one `Deliver` header per client around the same body.
    /// Runs on the engine thread only (log/spool appends and connection
    /// lookups are single-threaded).
    ///
    /// With storage configured, the event's spool appends and its receive
    /// mark (`source`) commit as **one WAL record** before any `Forward`
    /// frame reaches the wire — the record is the atomicity unit, so a
    /// power cut either keeps the whole batch or loses a batch no peer
    /// ever saw (the sender's spool retransmits it). Client deliveries are
    /// volatile by design (client logs live outside the storage contract).
    fn dispatch(
        &mut self,
        event: &Event,
        tree: TreeId,
        body: &Bytes,
        links: Vec<LinkId>,
        source: Option<(BrokerId, u64, u64)>,
    ) {
        let fabric = Arc::clone(&self.fabric);
        let network = fabric.network();
        let journaling = self.durable.is_some();
        let mut wal_ops: Vec<WalOp> = Vec::new();
        // Broker sends deferred until the WAL record commits; client
        // deliveries go out immediately.
        let mut deferred: Vec<(ConnId, Bytes)> = Vec::new();
        for link in links {
            match network.link_target(self.config.broker, link) {
                LinkTarget::Broker(neighbor) => {
                    // Spool first: the frame must survive a flap whether or
                    // not the link is currently up. An unconnected neighbor
                    // is no longer a silent drop — the spool replays after
                    // the reconnect handshake.
                    let spool = self.spools.entry(neighbor).or_default();
                    let seq = spool.last_seq() + 1;
                    let frame = if self.config.seed_dataflow {
                        BrokerToBroker::Forward {
                            tree,
                            seq,
                            epoch: self.epoch,
                            event: event.clone(),
                        }
                        .encode()
                    } else {
                        protocol::forward_frame(tree, seq, self.epoch, body)
                    };
                    spool.append(frame.clone());
                    if journaling {
                        wal_ops.push(WalOp::Append {
                            neighbor: neighbor.raw(),
                            seq,
                            frame: frame.clone(),
                        });
                    }
                    self.stats.spooled.fetch_add(1, Ordering::Relaxed);
                    if spool.len() > self.config.link_spool_bound {
                        let before = spool.lost();
                        spool.enforce_bound(self.config.link_spool_bound);
                        let dropped = spool.lost() - before;
                        self.stats
                            .dropped_spool_overflow
                            .fetch_add(dropped, Ordering::Relaxed);
                    }
                    // Direct sends wait for the reconnect handshake: on a
                    // conn still awaiting the peer's Hello the frame stays
                    // spool-only and `retransmit_spool` replays it in
                    // sequence order once the handshake lands (fresh
                    // higher-seq frames ahead of the replayed backlog would
                    // be mis-dropped by the receiver's cumulative dedup).
                    if let Some(&conn) = self.neighbors.get(&neighbor) {
                        if !self.awaiting_hello.contains(&conn) {
                            self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                            if journaling {
                                deferred.push((conn, frame));
                            } else {
                                self.outbox.send(conn, frame);
                            }
                        }
                    }
                }
                LinkTarget::Client(client) => {
                    let state = self.clients.entry(client).or_insert_with(|| ClientState {
                        conn: None,
                        log: EventLog::new(),
                        disconnected_at: Some(std::time::Instant::now()),
                    });
                    let seq = state.log.append(event.clone());
                    self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                    if let Some(conn) = state.conn {
                        let frame = if self.config.seed_dataflow {
                            BrokerToClient::Deliver {
                                seq,
                                event: event.clone(),
                            }
                            .encode()
                        } else {
                            protocol::deliver_frame(seq, body)
                        };
                        self.outbox.send(conn, frame);
                    }
                }
            }
        }
        if journaling {
            // The receive mark is journaled even when the event matched no
            // links: `durable_seq` (and with it ack pacing and the `Hello`
            // high-water mark) may only ever advance through the WAL.
            if let Some((from, seq, peer_incarnation)) = source {
                wal_ops.push(WalOp::RecvMark {
                    from: from.raw(),
                    incarnation: peer_incarnation,
                    seq,
                });
            }
            if !wal_ops.is_empty() {
                let sync = self.config.wal_sync;
                self.wal_commit(&wal_ops, sync);
            }
            if let Some((from, seq, peer_incarnation)) = source {
                if let Some(recv) = self.recv_from.get_mut(&from) {
                    // Skip if the peer restarted between receive and
                    // dispatch (shards > 1): the mark counts a dead
                    // sequence space and must not move the live window.
                    if recv.peer_incarnation == peer_incarnation {
                        recv.durable_seq = recv.durable_seq.max(seq);
                        if recv.durable_seq - recv.acked_sent >= FWD_ACK_EVERY {
                            recv.acked_sent = recv.durable_seq;
                            if let Some(&conn) = self.neighbors.get(&from) {
                                let ack = BrokerToBroker::FwdAck {
                                    seq: recv.acked_sent,
                                }
                                .encode();
                                self.outbox.send(conn, ack);
                            }
                        }
                    }
                }
            }
            for (conn, frame) in deferred {
                self.outbox.send(conn, frame);
            }
            self.maybe_snapshot();
        }
    }

    /// Appends one WAL record holding `ops` — the atomicity unit: recovery
    /// replays a record wholly or not at all, so everything that must
    /// survive together (an event's spool appends plus its receive mark)
    /// rides in one record. `sync` makes it durable before returning;
    /// trims pass `false` since losing one only re-replays already-acked
    /// frames, which the receiver's dedup discards.
    ///
    /// Storage errors are swallowed: a broker cannot un-route mid-event,
    /// and availability wins over durability by design (a persistently
    /// failing `FsStorage` surfaces at the next recovery). See DESIGN.md
    /// §14.
    fn wal_commit(&mut self, ops: &[WalOp], sync: bool) {
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        let payload = storage::encode_ops(ops);
        d.buf.clear();
        storage::encode_record(&payload, &mut d.buf);
        let _ = d.storage.append(WAL_LOG, &d.buf);
        if sync {
            let _ = d.storage.sync(WAL_LOG);
        }
        d.records_since_snapshot += 1;
        self.stats.wal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Journals a spool trim (unsynced — see [`EngineLoop::wal_commit`]).
    fn wal_commit_trim(&mut self, neighbor: BrokerId, acked: u64) {
        if self.durable.is_some() {
            self.wal_commit(
                &[WalOp::Trim {
                    neighbor: neighbor.raw(),
                    acked,
                }],
                false,
            );
            self.maybe_snapshot();
        }
    }

    /// Checkpoints once the WAL has grown past the configured cadence.
    fn maybe_snapshot(&mut self) {
        let due = self
            .durable
            .as_ref()
            .is_some_and(|d| d.records_since_snapshot >= self.config.snapshot_every.max(1));
        if due {
            self.checkpoint();
        }
    }

    /// Writes a full-state snapshot and truncates the WAL it absorbs.
    /// Snapshot-then-truncate order makes a cut between the two steps
    /// harmless: the old records replay idempotently on top of the new
    /// snapshot. A failed snapshot write leaves the WAL alone (nothing is
    /// lost; the log just keeps growing until a write succeeds).
    fn checkpoint(&mut self) {
        // Snapshot under the engine read guard, encode with it dropped —
        // same discipline as `resync_subscriptions`.
        let subscriptions = {
            let engine = self.engine.read();
            engine.all_subscriptions()
        };
        let snapshot = encode_snapshot(
            self.incarnation,
            &self.sub_ids,
            &self.tombstones,
            &self.recv_from,
            &self.spools,
            &subscriptions,
        );
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        if d.storage.write_snapshot(STATE_SNAPSHOT, &snapshot).is_ok() {
            let _ = d.storage.truncate(WAL_LOG);
            self.stats.snapshot_writes.fetch_add(1, Ordering::Relaxed);
        }
        d.records_since_snapshot = 0;
    }

    /// Checkpoints after a subscription-table, tombstone, or id-allocator
    /// change. Unlike spool traffic, control-plane state has no WAL ops —
    /// the snapshot is its only durable home — so waiting for the record
    /// cadence would leave a window where a crash resurrects a removed
    /// subscription. Resurrection is the one divergence the anti-entropy
    /// resync cannot heal: neighbors can re-add what the crash forgot,
    /// but nothing removes an extra the crash brought back (its
    /// `SubRemove` flooded and died long ago). Subscription churn is rare
    /// relative to event traffic (the paper's operating assumption), so
    /// the eager snapshot is cheap.
    fn checkpoint_subscriptions(&mut self) {
        if self.durable.is_some() {
            self.checkpoint();
        }
    }

    /// Sends every known subscription to a newly established broker link.
    /// Marked `resync` so the receiver filters them against its tombstones
    /// instead of resurrecting subscriptions removed while the link was
    /// down.
    fn resync_subscriptions(&self, conn: ConnId) {
        // Snapshot under the read guard, then send with the guard dropped:
        // outbox sends while holding `engine` would stall the matching
        // shards behind a transport hiccup.
        let subscriptions = {
            let engine = self.engine.read();
            engine.all_subscriptions()
        };
        for (schema, subscription) in subscriptions {
            self.outbox.send(
                conn,
                BrokerToBroker::SubAdd {
                    schema,
                    subscription,
                    resync: true,
                }
                .encode(),
            );
        }
    }

    fn flood_broker_message(&self, message: &BrokerToBroker, except: Option<ConnId>) {
        let targets: Vec<ConnId> = self
            .neighbors
            .values()
            .copied()
            .filter(|&conn| Some(conn) != except)
            .collect();
        if targets.is_empty() {
            return;
        }
        let frame = message.encode();
        self.outbox.send_many(&targets, &frame);
    }

    /// A link supervisor crossed [`BrokerConfig::repair_after`]
    /// consecutive redial failures (or the operator called
    /// [`BrokerNode::mark_link_down`]): originate the `LinkDown`
    /// statement for the edge between this broker and `neighbor`.
    fn handle_link_unreachable(&mut self, neighbor: BrokerId) {
        let me = self.config.broker;
        let network = self.fabric.network();
        // Only real topology edges can be declared dead; and a link whose
        // connection is currently live (handshake complete) is
        // demonstrably not unreachable — a stale supervisor escalation
        // racing a reconnect must not take a healthy link down.
        if neighbor == me || network.link_to_broker(me, neighbor).is_none() {
            return;
        }
        if let Some(&conn) = self.neighbors.get(&neighbor) {
            if !self.awaiting_hello.contains(&conn) {
                return;
            }
        }
        let (a, b) = crate::repair::normalize_edge(me, neighbor);
        let (ver, down) = self.link_state.get(a, b);
        if down {
            return; // already repaired around in a previous episode
        }
        self.apply_link_state(a, b, ver.saturating_add(1), true, None);
    }

    /// A flooded `LinkDown`/`LinkUp` statement arrived from a peer.
    /// Statements about edges outside the shared static topology are
    /// silently ignored (they cannot affect any tree this broker could
    /// compute); everything else goes through the apply test.
    fn handle_link_statement(
        &mut self,
        conn: ConnId,
        a: BrokerId,
        b: BrokerId,
        ver: u64,
        down: bool,
    ) {
        if !matches!(self.conns.get(&conn), Some(Peer::Broker(_))) {
            return; // link-state is broker-to-broker control traffic only
        }
        let network = self.fabric.network();
        let count = network.broker_count();
        // Endpoints come straight off the wire: bound-check before any
        // adjacency lookup (those index per-broker tables).
        if a.index() >= count || b.index() >= count || a == b {
            return;
        }
        if network.link_to_broker(a, b).is_none() {
            return;
        }
        let (a, b) = crate::repair::normalize_edge(a, b);
        self.apply_link_state(a, b, ver, down, Some(conn));
    }

    /// Folds one link-state statement into the table and, if it applied,
    /// performs the topology cutover: rebuild the spanning forest over
    /// the surviving graph, rebuild the matching engines' link spaces,
    /// flip the epoch, flood the statement onward, re-home every pending
    /// spooled frame down the repaired trees, and re-propagate
    /// subscription state over edges that just became tree-adjacent.
    ///
    /// Ordering inside this method is load-bearing (DESIGN.md §15): the
    /// flood (step 5) must precede the re-homing sweep (step 6) so that
    /// on every FIFO link the statement outruns any frame stitched under
    /// the new epoch — receivers flip before they see the frames.
    fn apply_link_state(
        &mut self,
        a: BrokerId,
        b: BrokerId,
        ver: u64,
        down: bool,
        from: Option<ConnId>,
    ) {
        // Speculative apply: only commit the table once the fabric
        // rebuild has succeeded, so the table never disagrees with the
        // fabric actually in force.
        let mut table = self.link_state.clone();
        if !table.apply(a, b, ver, down) {
            return; // stale or duplicate — already known, flood stops here
        }
        let Ok(fabric) = self.fabric.rebuild_excluding(&table.dead_edges()) else {
            // Unreachable with a fabric whose roots all exist in the
            // (immutable) network; bail without committing the statement.
            debug_assert!(false, "spanning-forest recompute failed");
            return;
        };
        let old_fabric = Arc::clone(&self.fabric);
        // Rebuild the matching engines in place: each per-space engine
        // swaps its link space and bumps its generation, so the match
        // caches (engine-thread and shard-owned alike) can never serve a
        // link set computed against the dead topology.
        self.engine
            .write()
            .rebuild_topology(self.config.broker, &fabric);
        self.link_state = table;
        self.fabric = fabric;
        self.epoch = self.link_state.epoch();
        self.epoch_gauge.store(self.epoch, Ordering::Relaxed);
        self.stats.epoch_flips.fetch_add(1, Ordering::Relaxed);
        if from.is_none() {
            self.stats.repairs_initiated.fetch_add(1, Ordering::Relaxed);
        }
        let statement = if down {
            BrokerToBroker::LinkDown { a, b, ver }
        } else {
            BrokerToBroker::LinkUp { a, b, ver }
        };
        self.flood_broker_message(&statement, from);
        self.rehome_spools();
        // Subscription state lives where the old trees put it; edges that
        // are tree-adjacent in the repaired forest but were not in the
        // old one have never carried this broker's subscription set.
        // Re-propagate over exactly those (the resync flag routes the
        // adds through the receiver's tombstone filter, so removals that
        // flooded before the repair stay removed).
        let me = self.config.broker;
        let resync: Vec<ConnId> = self
            .neighbors
            .iter()
            .filter(|&(&n, _)| {
                self.fabric.forest().tree_adjacent(me, n)
                    && !old_fabric.forest().tree_adjacent(me, n)
            })
            .map(|(_, &conn)| conn)
            .collect();
        for conn in resync {
            self.resync_subscriptions(conn);
        }
    }

    /// The epoch-flip sweep: every frame still pending (unacked) in any
    /// neighbor spool was stitched under a dead topology — receivers
    /// drop it on sight (stale epoch) and will never ack it. Pull each
    /// one out, trim the spools (journaled), and re-dispatch its event
    /// down this broker's tree in the repaired fabric, **broker links
    /// only**: the local client deliveries from its first dispatch
    /// already happened and client logs must not see it twice.
    ///
    /// Re-homing is what makes the stale-epoch drop lossless: a pending
    /// frame is either re-sent here (under the new epoch, with a fresh
    /// spool sequence) or provably unreachable (its subscribers sit in a
    /// component the surviving graph no longer connects). Subtrees the
    /// old dispatch already covered may be covered again — receiver
    /// sequence dedup cannot catch a re-homed frame (fresh sequence), so
    /// transition windows are at-least-once into routing; quiescent cuts
    /// (nothing pending except toward the dead link) stay exactly-once.
    fn rehome_spools(&mut self) {
        let me = self.config.broker;
        let Ok(tree) = self.fabric.tree_for(me) else {
            return;
        };
        let mut pending: Vec<Bytes> = Vec::new();
        let mut trims: Vec<(BrokerId, u64)> = Vec::new();
        for (&neighbor, spool) in self.spools.iter_mut() {
            let acked = spool.acked();
            let frames: Vec<Bytes> = spool
                .replay_after(acked)
                .map(|(_, frame)| frame.clone())
                .collect();
            if frames.is_empty() {
                continue;
            }
            spool.ack(spool.last_seq());
            spool.collect();
            trims.push((neighbor, spool.acked()));
            pending.extend(frames);
        }
        for (neighbor, acked) in trims {
            self.wal_commit_trim(neighbor, acked);
        }
        for frame in pending {
            // Spooled frames are full wire frames (length prefix + payload).
            let payload = frame.slice(4..);
            let Ok(BrokerToBroker::Forward { event, .. }) =
                BrokerToBroker::decode(payload.clone(), &self.config.registry)
            else {
                // A frame this broker stitched always decodes; skip
                // defensively rather than poison the sweep.
                continue;
            };
            let body = payload.slice(protocol::FORWARD_BODY_OFFSET..);
            self.stats.rerouted_frames.fetch_add(1, Ordering::Relaxed);
            let links = self.route_inline(&event, tree);
            let fabric = Arc::clone(&self.fabric);
            let network = fabric.network();
            let broker_links: Vec<LinkId> = links
                .into_iter()
                .filter(|&link| matches!(network.link_target(me, link), LinkTarget::Broker(_)))
                .collect();
            if broker_links.is_empty() {
                continue;
            }
            self.dispatch(&event, tree, &body, broker_links, None);
        }
    }

    /// Replays every link-state statement with a non-zero version to a
    /// (re)connecting neighbor, exactly like the subscription resync: a
    /// peer that rebooted (epoch 0, empty table) or sat out a repair
    /// behind a partition applies what it is missing and flips forward;
    /// a peer that already knows everything rejects them all in the
    /// apply test and the flood stops. Must be sent before any spool
    /// retransmission on the same conn — FIFO ordering is what
    /// guarantees the peer reaches our epoch before our replayed frames.
    fn resync_link_state(&self, conn: ConnId) {
        for s in self.link_state.statements() {
            let statement = if s.down {
                BrokerToBroker::LinkDown {
                    a: s.a,
                    b: s.b,
                    ver: s.ver,
                }
            } else {
                BrokerToBroker::LinkUp {
                    a: s.a,
                    b: s.b,
                    ver: s.ver,
                }
            };
            self.outbox.send(conn, statement.encode());
        }
    }

    fn client_of(&self, conn: ConnId) -> Option<ClientId> {
        match self.conns.get(&conn) {
            Some(Peer::Client(c)) => Some(*c),
            _ => None,
        }
    }

    fn client_error(&self, conn: ConnId, message: String) {
        self.stats.errors.fetch_add(1, Ordering::Relaxed);
        self.outbox
            .send(conn, BrokerToClient::Error { message }.encode());
    }

    /// One heartbeat-timer edge: walk the broker links, tear down any that
    /// stayed completely silent past the liveness timeout (half-open and
    /// stalled peers the kernel never reports — the spool keeps their
    /// frames and the redial handshake retransmits), and ping the merely
    /// idle ones so a live peer always has something to answer.
    fn heartbeat_tick(&mut self) {
        let now = std::time::Instant::now();
        let me = self.config.broker;
        // Snapshot: teardown mutates `neighbors`.
        let links: Vec<(BrokerId, ConnId)> = self.neighbors.iter().map(|(&b, &c)| (b, c)).collect();
        for (neighbor, conn) in links {
            let idle = match self.last_heard.get(&conn) {
                Some(&at) => now.saturating_duration_since(at),
                None => {
                    // A link installed before this feature had a clock (or
                    // raced the tick): start one now.
                    self.last_heard.insert(conn, now);
                    continue;
                }
            };
            if idle >= self.config.liveness_timeout {
                self.stats.liveness_timeouts.fetch_add(1, Ordering::Relaxed);
                // Immediate teardown (not flush-then-close): the peer is
                // unresponsive, and unregistering shuts the socket so both
                // our reader and a dialing supervisor notice and redial.
                self.handle_disconnect(conn);
            } else {
                // Jitter the ping threshold per link and per tick (same
                // splitmix64 draw as the redial jitter, distinct seed):
                // with a fixed threshold every broker pings every idle
                // link on the same timer edge and the whole mesh's probe
                // traffic lands in lockstep bursts. The draw stays within
                // [interval, 1.5*interval), so detection latency is still
                // bounded by the same order of one heartbeat interval.
                let interval =
                    Duration::from_millis(self.heartbeat_ms.load(Ordering::Relaxed).max(1));
                let state = self
                    .ping_jitter
                    .entry(neighbor)
                    .or_insert_with(|| heartbeat_jitter_seed(me, neighbor));
                let threshold = jittered_backoff(interval, state);
                if idle >= threshold {
                    self.stats.pings_sent.fetch_add(1, Ordering::Relaxed);
                    self.outbox.send(conn, BrokerToBroker::Ping.encode());
                }
            }
        }
    }

    /// A connection overran [`BrokerConfig::conn_queue_bound`]. Clients are
    /// evicted with a final flushed `Error` frame (their event logs survive
    /// for replay on reconnect); broker peers are disconnected without
    /// ceremony — their spools hold every unacknowledged frame and the
    /// redial handshake retransmits, so overflow costs a reconnect, not
    /// events.
    fn handle_queue_overflow(&mut self, conn: ConnId) {
        match self.conns.get(&conn) {
            Some(Peer::Client(_)) => {
                self.stats
                    .evicted_slow_consumers
                    .fetch_add(1, Ordering::Relaxed);
                let notice = BrokerToClient::Error {
                    message: "evicted: outgoing queue exceeded conn_queue_bound".into(),
                }
                .encode();
                self.outbox.evict(conn, Some(notice));
                self.forget_conn(conn);
            }
            Some(Peer::Broker(_)) => {
                self.stats
                    .peer_overflow_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                self.handle_disconnect(conn);
            }
            None => {
                // Overflow before the peer even said hello: nothing owed.
                self.outbox.evict(conn, None);
            }
        }
    }

    /// Pushes a cumulative `FwdAck` to every neighbor we owe one (received
    /// frames not yet acknowledged). Shared by the GC tick (idle links
    /// below the ack cadence) and the shutdown path.
    fn flush_forward_acks(&mut self) {
        for (&broker, recv) in self.recv_from.iter_mut() {
            // Acks advertise the durable mark only: a crash must never be
            // able to lose a frame a peer already trimmed on our word.
            if recv.durable_seq > recv.acked_sent {
                if let Some(&conn) = self.neighbors.get(&broker) {
                    recv.acked_sent = recv.durable_seq;
                    self.outbox.send(
                        conn,
                        BrokerToBroker::FwdAck {
                            seq: recv.acked_sent,
                        }
                        .encode(),
                    );
                }
            }
        }
    }

    fn handle_disconnect(&mut self, conn: ConnId) {
        self.outbox.unregister(conn);
        self.forget_conn(conn);
    }

    /// Engine-side teardown shared by the immediate
    /// ([`handle_disconnect`](Self::handle_disconnect)) and flush-then-
    /// close (`protocol_error_disconnect`) paths: drops the routing state
    /// for `conn` without touching the transport.
    fn forget_conn(&mut self, conn: ConnId) {
        self.awaiting_hello.remove(&conn);
        self.last_heard.remove(&conn);
        match self.conns.remove(&conn) {
            Some(Peer::Client(client)) => {
                if let Some(state) = self.clients.get_mut(&client) {
                    if state.conn == Some(conn) {
                        // Keep the log: deliveries continue to accumulate
                        // for replay on reconnect (until the TTL).
                        state.conn = None;
                        state.disconnected_at = Some(std::time::Instant::now());
                    }
                }
            }
            Some(Peer::Broker(broker)) if self.neighbors.get(&broker) == Some(&conn) => {
                self.neighbors.remove(&broker);
            }
            _ => {}
        }
    }

    fn collect_garbage(&mut self) {
        let ttl = self.config.client_ttl;
        self.clients.retain(|_, state| {
            state.log.collect();
            state.log.enforce_bound(self.config.log_bound);
            // Reclaim state for clients gone longer than the TTL.
            state.disconnected_at.is_none_or(|at| at.elapsed() <= ttl)
        });
        // Flush pending forward acks, so a link that went quiet below the
        // ack cadence still lets the neighbor trim its spool.
        self.flush_forward_acks();
        // Trim acknowledged spool entries and enforce the per-link bound
        // for neighbors that stay down.
        let mut trims: Vec<(BrokerId, u64)> = Vec::new();
        for (&broker, spool) in self.spools.iter_mut() {
            let acked_before = spool.acked();
            spool.collect();
            let before = spool.lost();
            spool.enforce_bound(self.config.link_spool_bound);
            let dropped = spool.lost() - before;
            self.stats
                .dropped_spool_overflow
                .fetch_add(dropped, Ordering::Relaxed);
            // Bound enforcement can advance the ack floor (dropped-as-lost
            // frames); journal it so recovery agrees with memory.
            if spool.acked() != acked_before {
                trims.push((broker, spool.acked()));
            }
        }
        for (broker, acked) in trims {
            self.wal_commit_trim(broker, acked);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{PowerCut, SimStorage};
    use linkcast_types::{EventSchema, ValueKind};

    fn registry() -> SchemaRegistry {
        let mut r = SchemaRegistry::new();
        r.register(
            EventSchema::builder("trades")
                .attribute("issue", ValueKind::Str)
                .attribute("volume", ValueKind::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        r
    }

    fn subscription(reg: &SchemaRegistry, id: u32) -> (SchemaId, Subscription) {
        let schema_id = SchemaId::new(0);
        let schema = reg.get(schema_id).unwrap();
        let sub = Subscription::new(
            SubscriptionId::new(id),
            SubscriberId::new(BrokerId::new(1), ClientId::new(2)),
            linkcast_types::parse_predicate(schema, "volume > 10").unwrap(),
        );
        (schema_id, sub)
    }

    /// One WAL record, encoded the way `wal_commit` writes it.
    fn record(ops: &[WalOp]) -> Vec<u8> {
        let payload = storage::encode_ops(ops);
        let mut out = Vec::new();
        storage::encode_record(&payload, &mut out);
        out
    }

    #[test]
    fn redial_jitter_stays_in_band_and_spreads_the_herd() {
        // In-band: every jittered value lands in [backoff, 1.5*backoff].
        for base in [LINK_REDIAL_MIN, Duration::from_millis(400), LINK_REDIAL_MAX] {
            let mut state = jitter_seed(BrokerId::new(1), BrokerId::new(2));
            for _ in 0..64 {
                let j = jittered_backoff(base, &mut state);
                assert!(j >= base, "{j:?} < {base:?}");
                assert!(
                    j <= base + base / 2 + Duration::from_millis(1),
                    "{j:?} too far over {base:?}"
                );
            }
        }
        // Spread: the first redial of distinct (local, neighbor) pairs —
        // the lockstep moment after a hub crash — must not collapse onto
        // one instant. Demand a majority of distinct values across 16
        // supervisors (50ms base gives 26 possible slots).
        let base = LINK_REDIAL_MIN;
        let firsts: std::collections::HashSet<Duration> = (0..16)
            .map(|n| {
                let mut state = jitter_seed(BrokerId::new(n), BrokerId::new(0));
                jittered_backoff(base, &mut state)
            })
            .collect();
        assert!(
            firsts.len() >= 8,
            "only {} distinct first backoffs",
            firsts.len()
        );
        // And successive redials of one supervisor spread too.
        let mut state = jitter_seed(BrokerId::new(3), BrokerId::new(0));
        let series: std::collections::HashSet<Duration> = (0..16)
            .map(|_| jittered_backoff(base, &mut state))
            .collect();
        assert!(
            series.len() >= 8,
            "only {} distinct successive backoffs",
            series.len()
        );
    }

    #[test]
    fn heartbeat_jitter_stays_in_band_and_decorrelates_from_redials() {
        // In-band: every jittered ping threshold lands in
        // [interval, 1.5*interval] — detection latency stays bounded by
        // the same order of one heartbeat interval.
        for base in [
            Duration::from_millis(100),
            Duration::from_millis(500),
            Duration::from_secs(2),
        ] {
            let mut state = heartbeat_jitter_seed(BrokerId::new(1), BrokerId::new(2));
            for _ in 0..64 {
                let j = jittered_backoff(base, &mut state);
                assert!(j >= base, "{j:?} < {base:?}");
                assert!(
                    j <= base + base / 2 + Duration::from_millis(1),
                    "{j:?} too far over {base:?}"
                );
            }
        }
        // Spread: distinct links draw distinct first thresholds, so the
        // mesh's pings do not land on one timer edge.
        let base = Duration::from_millis(500);
        let firsts: std::collections::HashSet<Duration> = (0..16)
            .map(|n| {
                let mut state = heartbeat_jitter_seed(BrokerId::new(n), BrokerId::new(0));
                jittered_backoff(base, &mut state)
            })
            .collect();
        assert!(
            firsts.len() >= 8,
            "only {} distinct ping thresholds",
            firsts.len()
        );
        // Decorrelated from the redial stream: the same (local, neighbor)
        // pair must not draw the same schedule for pings as for redials.
        let mut redial = jitter_seed(BrokerId::new(1), BrokerId::new(2));
        let mut ping = heartbeat_jitter_seed(BrokerId::new(1), BrokerId::new(2));
        let redials: Vec<Duration> = (0..8)
            .map(|_| jittered_backoff(base, &mut redial))
            .collect();
        let pings: Vec<Duration> = (0..8).map(|_| jittered_backoff(base, &mut ping)).collect();
        assert_ne!(redials, pings, "ping jitter mirrors the redial jitter");
    }

    #[test]
    fn snapshot_roundtrips_full_state() {
        let reg = registry();
        let mut sub_ids = SubIdAllocator::new();
        let a = sub_ids.allocate().unwrap();
        let _b = sub_ids.allocate().unwrap();
        sub_ids.free(a);
        let mut tombstones = TombstoneSet::default();
        tombstones.insert(SubscriptionId::new(77));
        let mut recv_from = HashMap::new();
        recv_from.insert(
            BrokerId::new(3),
            NeighborRecv {
                seq: 9,
                durable_seq: 9,
                acked_sent: 0,
                peer_incarnation: 0xabc,
            },
        );
        let mut spools = HashMap::new();
        let mut spool: AckLog<Bytes> = AckLog::new();
        spool.append(Bytes::from_static(b"one"));
        spool.append(Bytes::from_static(b"two"));
        spool.append(Bytes::from_static(b"three"));
        spool.ack(1);
        spools.insert(BrokerId::new(4), spool);
        let subs = vec![subscription(&reg, 5)];

        let bytes = encode_snapshot(0xfeed, &sub_ids, &tombstones, &recv_from, &spools, &subs);
        let back = decode_snapshot(&bytes, &reg).expect("snapshot decodes");

        assert_eq!(back.incarnation, 0xfeed);
        assert_eq!(back.sub_ids.checkpoint(), sub_ids.checkpoint());
        assert!(back.tombstones.contains(SubscriptionId::new(77)));
        let recv = back.recv_from.get(&BrokerId::new(3)).unwrap();
        assert_eq!(
            (recv.seq, recv.durable_seq, recv.peer_incarnation),
            (9, 9, 0xabc)
        );
        // Acked-sent restarts at zero: the next flush re-advertises the
        // durable mark, which is harmless (cumulative acks clamp).
        assert_eq!(recv.acked_sent, 0);
        let spool = back.spools.get(&BrokerId::new(4)).unwrap();
        // Only unacknowledged frames survive, in the same sequence space.
        assert_eq!(spool.acked(), 1);
        assert_eq!(spool.last_seq(), 3);
        let frames: Vec<&Bytes> = spool.replay_after(1).map(|(_, f)| f).collect();
        assert_eq!(
            frames,
            vec![&Bytes::from_static(b"two"), &Bytes::from_static(b"three")]
        );
        assert_eq!(back.subscriptions.len(), 1);
        assert_eq!(
            back.subscriptions.first().unwrap().1.id(),
            SubscriptionId::new(5)
        );
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_fresh_boot() {
        let reg = registry();
        assert!(decode_snapshot(&[1, 2, 3], &reg).is_none());
        let st = SimStorage::default();
        st.write_snapshot(STATE_SNAPSHOT, &[9, 9, 9, 9]).unwrap();
        let stats = StatsInner::default();
        let r = recover(&st, &reg, &stats).unwrap();
        // Fresh state, fresh incarnation — but the boot still counts as a
        // recovery attempt (durable state existed).
        assert!(r.spools.is_empty());
        assert_ne!(r.incarnation, 0);
        assert_eq!(stats.recoveries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fresh_storage_recovers_to_fresh_boot_without_counting() {
        let reg = registry();
        let st = SimStorage::default();
        let stats = StatsInner::default();
        let r = recover(&st, &reg, &stats).unwrap();
        assert!(r.recv_from.is_empty());
        assert_eq!(stats.recoveries.load(Ordering::Relaxed), 0);
        assert_eq!(stats.wal_replayed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn recover_replays_wal_suffix_on_top_of_snapshot() {
        let reg = registry();
        let st = SimStorage::default();
        // Snapshot: incarnation 7, one spool with one unacked frame.
        let mut spools = HashMap::new();
        let mut spool: AckLog<Bytes> = AckLog::new();
        spool.append(Bytes::from_static(b"f1"));
        spools.insert(BrokerId::new(2), spool);
        let snap = encode_snapshot(
            7,
            &SubIdAllocator::new(),
            &TombstoneSet::default(),
            &HashMap::new(),
            &spools,
            &[],
        );
        st.write_snapshot(STATE_SNAPSHOT, &snap).unwrap();
        // WAL suffix: one more append + a receive mark, then a trim.
        st.append(
            WAL_LOG,
            &record(&[
                WalOp::Append {
                    neighbor: 2,
                    seq: 2,
                    frame: Bytes::from_static(b"f2"),
                },
                WalOp::RecvMark {
                    from: 3,
                    incarnation: 0xabc,
                    seq: 5,
                },
            ]),
        )
        .unwrap();
        st.append(
            WAL_LOG,
            &record(&[WalOp::Trim {
                neighbor: 2,
                acked: 1,
            }]),
        )
        .unwrap();
        st.sync(WAL_LOG).unwrap();

        let stats = StatsInner::default();
        let r = recover(&st, &reg, &stats).unwrap();
        assert_eq!(r.incarnation, 7);
        let spool = r.spools.get(&BrokerId::new(2)).unwrap();
        assert_eq!((spool.acked(), spool.last_seq()), (1, 2));
        let frames: Vec<&Bytes> = spool.replay_after(1).map(|(_, f)| f).collect();
        assert_eq!(frames, vec![&Bytes::from_static(b"f2")]);
        let recv = r.recv_from.get(&BrokerId::new(3)).unwrap();
        assert_eq!(
            (recv.seq, recv.durable_seq, recv.peer_incarnation),
            (5, 5, 0xabc)
        );
        assert_eq!(stats.recoveries.load(Ordering::Relaxed), 1);
        assert_eq!(stats.wal_replayed.load(Ordering::Relaxed), 2);
        assert_eq!(stats.torn_records_discarded.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn snapshot_torn_cut_recovers_from_previous_snapshot_and_wal() {
        // A cut that interrupts the snapshot rename itself (no storage op
        // followed the write) reverts the slot to its previous contents.
        // The WAL was not yet truncated — the truncate would have
        // committed the rename — so the previous snapshot plus the full
        // WAL reconstructs the state the torn snapshot described.
        let reg = registry();
        let st = SimStorage::default();
        let old = encode_snapshot(
            7,
            &SubIdAllocator::new(),
            &TombstoneSet::default(),
            &HashMap::new(),
            &HashMap::new(),
            &[],
        );
        st.write_snapshot(STATE_SNAPSHOT, &old).unwrap();
        st.append(
            WAL_LOG,
            &record(&[WalOp::RecvMark {
                from: 3,
                incarnation: 0xabc,
                seq: 4,
            }]),
        )
        .unwrap();
        st.sync(WAL_LOG).unwrap();
        // The interrupted checkpoint (a decodable snapshot with a
        // recognizably different incarnation, so a failed revert shows).
        let torn = encode_snapshot(
            9,
            &SubIdAllocator::new(),
            &TombstoneSet::default(),
            &HashMap::new(),
            &HashMap::new(),
            &[],
        );
        st.write_snapshot(STATE_SNAPSHOT, &torn).unwrap();
        st.power_cut(PowerCut::SnapshotTorn);

        let stats = StatsInner::default();
        let r = recover(&st, &reg, &stats).unwrap();
        assert_eq!(
            r.incarnation, 7,
            "torn rename must revert to the committed snapshot"
        );
        let recv = r.recv_from.get(&BrokerId::new(3)).unwrap();
        assert_eq!((recv.seq, recv.durable_seq), (4, 4));
        assert_eq!(stats.wal_replayed.load(Ordering::Relaxed), 1);
        assert_eq!(stats.recoveries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn wal_replay_is_idempotent_over_an_untruncated_log() {
        // A cut between boot-snapshot commit and WAL truncate leaves the
        // absorbed records behind: replaying them on top of the snapshot
        // that already contains their effects must change nothing.
        let reg = registry();
        let st = SimStorage::default();
        let append = record(&[
            WalOp::Append {
                neighbor: 2,
                seq: 1,
                frame: Bytes::from_static(b"f1"),
            },
            WalOp::RecvMark {
                from: 3,
                incarnation: 0xabc,
                seq: 4,
            },
        ]);
        st.append(WAL_LOG, &append).unwrap();
        st.sync(WAL_LOG).unwrap();
        let stats = StatsInner::default();
        let first = recover(&st, &reg, &stats).unwrap();
        // Simulate the boot snapshot without the truncate.
        let snap = encode_snapshot(
            first.incarnation,
            &first.sub_ids,
            &first.tombstones,
            &first.recv_from,
            &first.spools,
            &[],
        );
        st.write_snapshot(STATE_SNAPSHOT, &snap).unwrap();
        let second = recover(&st, &reg, &stats).unwrap();
        assert_eq!(second.incarnation, first.incarnation);
        let spool = second.spools.get(&BrokerId::new(2)).unwrap();
        assert_eq!((spool.acked(), spool.last_seq(), spool.len()), (0, 1, 1));
        let recv = second.recv_from.get(&BrokerId::new(3)).unwrap();
        assert_eq!(recv.seq, 4);
    }

    #[test]
    fn torn_tail_record_is_discarded_on_recovery_not_replayed() {
        let reg = registry();
        let st = SimStorage::default();
        st.append(
            WAL_LOG,
            &record(&[WalOp::Append {
                neighbor: 2,
                seq: 1,
                frame: Bytes::from_static(b"durable"),
            }]),
        )
        .unwrap();
        st.sync(WAL_LOG).unwrap();
        // The second record never syncs; the power cut tears it.
        st.append(
            WAL_LOG,
            &record(&[WalOp::Append {
                neighbor: 2,
                seq: 2,
                frame: Bytes::from_static(b"torn"),
            }]),
        )
        .unwrap();
        st.power_cut(PowerCut::TornTail);

        let stats = StatsInner::default();
        let r = recover(&st, &reg, &stats).unwrap();
        let spool = r.spools.get(&BrokerId::new(2)).unwrap();
        assert_eq!(
            spool.last_seq(),
            1,
            "torn append must not be replayed as data"
        );
        assert_eq!(stats.torn_records_discarded.load(Ordering::Relaxed), 1);
        assert_eq!(stats.wal_replayed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn lost_suffix_reverts_to_synced_prefix_on_recovery() {
        let reg = registry();
        let st = SimStorage::default();
        st.append(
            WAL_LOG,
            &record(&[WalOp::RecvMark {
                from: 3,
                incarnation: 1,
                seq: 10,
            }]),
        )
        .unwrap();
        st.sync(WAL_LOG).unwrap();
        st.append(
            WAL_LOG,
            &record(&[WalOp::RecvMark {
                from: 3,
                incarnation: 1,
                seq: 20,
            }]),
        )
        .unwrap();
        st.power_cut(PowerCut::LostSuffix);

        let stats = StatsInner::default();
        let r = recover(&st, &reg, &stats).unwrap();
        let recv = r.recv_from.get(&BrokerId::new(3)).unwrap();
        assert_eq!(
            recv.durable_seq, 10,
            "unsynced mark must not survive the cut"
        );
    }

    #[test]
    fn recv_mark_replay_tracks_peer_restarts_in_order() {
        let reg = registry();
        let st = SimStorage::default();
        // Peer incarnation A reaches seq 10, restarts as B, reaches seq 2.
        st.append(
            WAL_LOG,
            &record(&[WalOp::RecvMark {
                from: 3,
                incarnation: 0xa,
                seq: 10,
            }]),
        )
        .unwrap();
        st.append(
            WAL_LOG,
            &record(&[WalOp::RecvMark {
                from: 3,
                incarnation: 0xb,
                seq: 2,
            }]),
        )
        .unwrap();
        st.sync(WAL_LOG).unwrap();
        let stats = StatsInner::default();
        let r = recover(&st, &reg, &stats).unwrap();
        let recv = r.recv_from.get(&BrokerId::new(3)).unwrap();
        assert_eq!((recv.peer_incarnation, recv.seq), (0xb, 2));
    }
}
