//! The broker node: connection manager, protocol state machine, and
//! lifecycle.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use linkcast::{LinkTarget, RoutingFabric, TreeId};
use linkcast_matching::{MatchStats, PstOptions};
use linkcast_types::{
    BrokerId, ClientId, Event, SchemaRegistry, SubscriberId, Subscription, SubscriptionId,
};

use crate::engine::MatchingEngine;
use crate::log::EventLog;
use crate::outbox::{ConnId, Outbox, Sink};
use crate::protocol::{BrokerToBroker, BrokerToClient, ClientToBroker};
use crate::tcp;

/// Configuration of one broker node.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// This broker's identity in the topology.
    pub broker: BrokerId,
    /// Shared topology + spanning trees (identical on every node).
    pub fabric: Arc<RoutingFabric>,
    /// Information spaces served.
    pub registry: Arc<SchemaRegistry>,
    /// PST options for the matching engine.
    pub options: PstOptions,
    /// Listen address; use port 0 to let the OS pick.
    pub listen: SocketAddr,
    /// Size of the sending-thread pool.
    pub sender_threads: usize,
    /// Garbage-collection period for client event logs.
    pub gc_interval: Duration,
    /// Maximum retained entries per client log (older unacknowledged
    /// entries are dropped and counted as lost).
    pub log_bound: usize,
    /// How long a disconnected client's log is retained before the garbage
    /// collector reclaims it entirely. A client reconnecting later starts a
    /// fresh session (sequence numbers restart).
    pub client_ttl: Duration,
}

impl BrokerConfig {
    /// A localhost configuration with OS-assigned port and default tuning.
    pub fn localhost(
        broker: BrokerId,
        fabric: Arc<RoutingFabric>,
        registry: Arc<SchemaRegistry>,
    ) -> Self {
        BrokerConfig {
            broker,
            fabric,
            registry,
            options: PstOptions::default(),
            listen: "127.0.0.1:0".parse().expect("valid literal address"),
            sender_threads: 2,
            gc_interval: Duration::from_millis(250),
            log_bound: 4096,
            client_ttl: Duration::from_secs(3600),
        }
    }
}

/// A point-in-time snapshot of a broker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Events published by local clients.
    pub published: u64,
    /// Event copies forwarded to neighbor brokers.
    pub forwarded: u64,
    /// Events appended to local client logs (deliveries).
    pub delivered: u64,
    /// Protocol errors answered with `Error` frames.
    pub errors: u64,
    /// Currently registered subscriptions (network-wide view).
    pub subscriptions: usize,
}

#[derive(Debug, Default)]
struct StatsInner {
    published: AtomicU64,
    forwarded: AtomicU64,
    delivered: AtomicU64,
    errors: AtomicU64,
    subscriptions: AtomicUsize,
}

pub(crate) enum Command {
    /// A frame payload (length prefix stripped) from a connection.
    Frame(ConnId, Bytes),
    /// The dialing side knows which neighbor it reached.
    DialedNeighbor(ConnId, BrokerId),
    /// A connection died (reader EOF/error or writer failure).
    Disconnected(ConnId),
    /// Periodic garbage collection of client logs.
    GcTick,
    /// Stop the engine loop.
    Shutdown,
}

enum Peer {
    Client(ClientId),
    Broker(BrokerId),
}

struct ClientState {
    conn: Option<ConnId>,
    log: EventLog,
    /// When the client's connection dropped (None while connected).
    disconnected_at: Option<std::time::Instant>,
}

/// A running broker node (also its handle: inspect stats, connect
/// neighbors, open local connections, shut down).
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use linkcast::{NetworkBuilder, RoutingFabric};
/// use linkcast_types::{EventSchema, SchemaRegistry, ValueKind};
/// use linkcast_broker::{BrokerConfig, BrokerNode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let b0 = b.add_broker();
/// let _client = b.add_client(b0)?;
/// let fabric = RoutingFabric::new_all_roots(b.build()?)?;
/// let mut registry = SchemaRegistry::new();
/// registry.register(
///     EventSchema::builder("trades")
///         .attribute("issue", ValueKind::Str)
///         .build()?,
/// )?;
/// let node = BrokerNode::start(BrokerConfig::localhost(b0, fabric, Arc::new(registry)))?;
/// println!("listening on {}", node.addr());
/// node.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct BrokerNode {
    broker: BrokerId,
    addr: SocketAddr,
    registry: Arc<SchemaRegistry>,
    cmd_tx: Sender<Command>,
    outbox: Arc<Outbox>,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    next_conn: Arc<AtomicU64>,
    engine_thread: Option<std::thread::JoinHandle<()>>,
}

impl BrokerNode {
    /// Starts the node: binds the listener, spawns the engine loop, the
    /// sender pool, the acceptor, and the GC ticker.
    ///
    /// # Errors
    ///
    /// I/O errors from binding, or engine construction errors (boxed).
    pub fn start(config: BrokerConfig) -> Result<BrokerNode, Box<dyn std::error::Error>> {
        let listener = TcpListener::bind(config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let (dead_tx, dead_rx) = unbounded::<ConnId>();
        let outbox = Outbox::new(config.sender_threads.max(1), dead_tx);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let next_conn = Arc::new(AtomicU64::new(1));

        // Forward writer deaths into the command stream.
        {
            let cmd_tx = cmd_tx.clone();
            std::thread::Builder::new()
                .name("dead-conn-fwd".into())
                .spawn(move || {
                    for conn in dead_rx.iter() {
                        if cmd_tx.send(Command::Disconnected(conn)).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // GC ticker.
        {
            let cmd_tx = cmd_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let interval = config.gc_interval;
            std::thread::Builder::new()
                .name("gc-ticker".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(interval);
                        if cmd_tx.send(Command::GcTick).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // Acceptor.
        tcp::spawn_acceptor(
            listener,
            cmd_tx.clone(),
            Arc::clone(&outbox),
            Arc::clone(&next_conn),
            Arc::clone(&shutdown),
        )?;

        // Engine loop.
        let engine = MatchingEngine::new(
            config.broker,
            &config.fabric,
            Arc::clone(&config.registry),
            config.options.clone(),
        )?;
        let engine_thread = {
            let outbox = Arc::clone(&outbox);
            let stats = Arc::clone(&stats);
            let config2 = config.clone();
            std::thread::Builder::new()
                .name(format!("broker-{}", config.broker))
                .spawn(move || {
                    EngineLoop {
                        config: config2,
                        engine,
                        outbox,
                        stats,
                        conns: HashMap::new(),
                        clients: HashMap::new(),
                        neighbors: HashMap::new(),
                        sub_counter: 0,
                    }
                    .run(cmd_rx)
                })?
        };

        Ok(BrokerNode {
            broker: config.broker,
            addr,
            registry: config.registry,
            cmd_tx,
            outbox,
            stats,
            shutdown,
            next_conn,
            engine_thread: Some(engine_thread),
        })
    }

    /// This broker's id.
    pub fn broker(&self) -> BrokerId {
        self.broker
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The information spaces served.
    pub fn registry(&self) -> &Arc<SchemaRegistry> {
        &self.registry
    }

    /// Dials a neighbor broker and performs the broker-protocol handshake.
    /// Call once per topology link (one side suffices; conventionally the
    /// higher-id broker dials).
    ///
    /// # Errors
    ///
    /// Connection I/O errors.
    pub fn connect_to(&self, neighbor: BrokerId, addr: SocketAddr) -> std::io::Result<()> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let reader = stream.try_clone()?;
        self.outbox.register(conn, Sink::Tcp(stream));
        let _ = self.cmd_tx.send(Command::DialedNeighbor(conn, neighbor));
        self.outbox.send(
            conn,
            BrokerToBroker::Hello {
                broker: self.broker,
            }
            .encode(),
        );
        tcp::spawn_reader(
            reader,
            conn,
            self.cmd_tx.clone(),
            Arc::clone(&self.shutdown),
        );
        Ok(())
    }

    /// Like [`BrokerNode::connect_to`], but supervised: if the link drops
    /// (or the first dial fails), a background thread redials with
    /// exponential backoff until the node shuts down. On every
    /// (re-)establishment both sides resync their full subscription sets,
    /// so a restarted neighbor catches up on missed control traffic.
    ///
    /// Events routed toward the neighbor while the link is down are dropped
    /// (no spooling across broker links, matching the prototype's scope).
    pub fn connect_to_persistent(&self, neighbor: BrokerId, addr: SocketAddr) {
        let cmd_tx = self.cmd_tx.clone();
        let outbox = Arc::clone(&self.outbox);
        let next_conn = Arc::clone(&self.next_conn);
        let shutdown = Arc::clone(&self.shutdown);
        let me = self.broker;
        let _ = std::thread::Builder::new()
            .name(format!("link-{me}-{neighbor}"))
            .spawn(move || {
                let mut backoff = Duration::from_millis(50);
                while !shutdown.load(Ordering::Acquire) {
                    let Ok(stream) = std::net::TcpStream::connect(addr) else {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_secs(2));
                        continue;
                    };
                    if stream.set_nodelay(true).is_err()
                        || stream
                            .set_read_timeout(Some(Duration::from_millis(200)))
                            .is_err()
                    {
                        continue;
                    }
                    let Ok(mut reader) = stream.try_clone() else {
                        continue;
                    };
                    let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                    outbox.register(conn, crate::outbox::Sink::Tcp(stream));
                    if cmd_tx
                        .send(Command::DialedNeighbor(conn, neighbor))
                        .is_err()
                    {
                        return;
                    }
                    outbox.send(conn, BrokerToBroker::Hello { broker: me }.encode());
                    backoff = Duration::from_millis(50);
                    // Inline read loop; on link death, fall through to redial.
                    loop {
                        if shutdown.load(Ordering::Acquire) {
                            return;
                        }
                        match crate::tcp::read_frame(&mut reader) {
                            Ok(Some(payload)) => {
                                if cmd_tx.send(Command::Frame(conn, payload)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => continue,
                            Err(_) => {
                                let _ = cmd_tx.send(Command::Disconnected(conn));
                                break;
                            }
                        }
                    }
                    std::thread::sleep(backoff);
                }
            });
    }

    /// Opens an in-process connection (bypassing TCP). The returned pair is
    /// a sender for client frames and a receiver of broker frames — used by
    /// tests and the throughput benchmark.
    pub fn open_local(&self) -> LocalConn {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded::<Bytes>();
        self.outbox.register(conn, Sink::Chan(tx));
        LocalConn {
            conn,
            cmd_tx: self.cmd_tx.clone(),
            rx,
            registry: Arc::clone(&self.registry),
        }
    }

    /// A snapshot of the broker's counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            published: self.stats.published.load(Ordering::Relaxed),
            forwarded: self.stats.forwarded.load(Ordering::Relaxed),
            delivered: self.stats.delivered.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            subscriptions: self.stats.subscriptions.load(Ordering::Relaxed),
        }
    }

    /// Stops the node: the engine loop exits, the acceptor stops, reader
    /// threads wind down at their next poll.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
        // Close every connection (peers see EOF and can react, e.g. a
        // supervised link redials) and wind the sender pool down.
        self.outbox.close();
    }
}

impl Drop for BrokerNode {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for BrokerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerNode")
            .field("broker", &self.broker)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// An in-process connection to a broker (see [`BrokerNode::open_local`]).
pub struct LocalConn {
    conn: ConnId,
    cmd_tx: Sender<Command>,
    rx: Receiver<Bytes>,
    registry: Arc<SchemaRegistry>,
}

impl LocalConn {
    /// Sends a client-protocol message to the broker.
    pub fn send(&self, message: &ClientToBroker) {
        let frame = message.encode();
        // The engine expects the payload without the length prefix.
        let payload = frame.slice(4..);
        let _ = self.cmd_tx.send(Command::Frame(self.conn, payload));
    }

    /// Receives the next broker-protocol message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`crate::ClientError`] on timeout or malformed frames.
    pub fn recv(&self, timeout: Duration) -> Result<BrokerToClient, crate::ClientError> {
        let frame = self
            .rx
            .recv_timeout(timeout)
            .map_err(|_| crate::ClientError::Timeout)?;
        let payload = frame.slice(4..);
        BrokerToClient::decode(payload, &self.registry)
            .map_err(|e| crate::ClientError::Protocol(e.to_string()))
    }
}

impl Drop for LocalConn {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Command::Disconnected(self.conn));
    }
}

struct EngineLoop {
    config: BrokerConfig,
    engine: MatchingEngine,
    outbox: Arc<Outbox>,
    stats: Arc<StatsInner>,
    conns: HashMap<ConnId, Peer>,
    clients: HashMap<ClientId, ClientState>,
    neighbors: HashMap<BrokerId, ConnId>,
    sub_counter: u32,
}

impl EngineLoop {
    fn run(mut self, cmd_rx: Receiver<Command>) {
        for command in cmd_rx.iter() {
            match command {
                Command::Frame(conn, payload) => self.handle_frame(conn, payload),
                Command::DialedNeighbor(conn, neighbor) => {
                    self.conns.insert(conn, Peer::Broker(neighbor));
                    self.neighbors.insert(neighbor, conn);
                    self.resync_subscriptions(conn);
                }
                Command::Disconnected(conn) => self.handle_disconnect(conn),
                Command::GcTick => self.collect_garbage(),
                Command::Shutdown => break,
            }
        }
    }

    fn handle_frame(&mut self, conn: ConnId, payload: Bytes) {
        let Some(&tag) = payload.first() else {
            return;
        };
        if tag < 0x10 {
            match ClientToBroker::decode(payload, &self.config.registry) {
                Ok(msg) => self.handle_client(conn, msg),
                Err(e) => self.client_error(conn, e.to_string()),
            }
        } else if (0x21..=0x2f).contains(&tag) {
            match BrokerToBroker::decode(payload, &self.config.registry) {
                Ok(msg) => self.handle_broker(conn, msg),
                Err(_) => {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            self.client_error(conn, format!("unexpected message tag {tag:#x}"));
        }
    }

    fn handle_client(&mut self, conn: ConnId, message: ClientToBroker) {
        match message {
            ClientToBroker::Hello {
                client,
                resume_from,
            } => {
                let home = self.config.fabric.network().home_broker(client);
                if home != Some(self.config.broker) {
                    self.client_error(
                        conn,
                        format!(
                            "client {client} is not homed at broker {}",
                            self.config.broker
                        ),
                    );
                    return;
                }
                self.conns.insert(conn, Peer::Client(client));
                let state = self.clients.entry(client).or_insert_with(|| ClientState {
                    conn: None,
                    log: EventLog::new(),
                    disconnected_at: None,
                });
                state.conn = Some(conn);
                state.disconnected_at = None;
                state.log.ack(resume_from);
                let acked = state.log.acked();
                self.outbox.send(
                    conn,
                    BrokerToClient::Welcome {
                        client,
                        resume_from: acked,
                    }
                    .encode(),
                );
                // Replay what the client missed while disconnected.
                let frames: Vec<Bytes> = state
                    .log
                    .replay_after(acked)
                    .map(|(seq, event)| {
                        BrokerToClient::Deliver {
                            seq,
                            event: event.clone(),
                        }
                        .encode()
                    })
                    .collect();
                for frame in frames {
                    self.outbox.send(conn, frame);
                }
            }
            ClientToBroker::Subscribe { schema, expression } => {
                let Some(client) = self.client_of(conn) else {
                    self.client_error(conn, "subscribe before hello".into());
                    return;
                };
                let predicate = match self.engine.parse_subscription(schema, &expression) {
                    Ok(p) => p,
                    Err(e) => {
                        self.client_error(conn, e.to_string());
                        return;
                    }
                };
                // Globally unique id: 12 bits of broker, 20 bits of
                // per-broker counter.
                if self.sub_counter >= 1 << 20 {
                    self.client_error(conn, "subscription id space exhausted".into());
                    return;
                }
                let id = SubscriptionId::new((self.config.broker.raw() << 20) | self.sub_counter);
                self.sub_counter += 1;
                let subscription =
                    Subscription::new(id, SubscriberId::new(self.config.broker, client), predicate);
                match self.engine.subscribe(schema, subscription.clone()) {
                    Ok(()) => {
                        self.stats
                            .subscriptions
                            .store(self.engine.subscription_count(), Ordering::Relaxed);
                        self.outbox
                            .send(conn, BrokerToClient::SubAck { id }.encode());
                        // Control plane: flood to every neighbor.
                        self.flood_broker_message(
                            &BrokerToBroker::SubAdd {
                                schema,
                                subscription,
                            },
                            None,
                        );
                    }
                    Err(e) => self.client_error(conn, e.to_string()),
                }
            }
            ClientToBroker::Unsubscribe { id } => {
                let Some(client) = self.client_of(conn) else {
                    self.client_error(conn, "unsubscribe before hello".into());
                    return;
                };
                let owned = self
                    .engine
                    .subscription(id)
                    .is_some_and(|s| s.subscriber().client == client);
                if !owned {
                    self.client_error(conn, format!("subscription {id} is not yours"));
                    return;
                }
                self.engine.unsubscribe(id);
                self.stats
                    .subscriptions
                    .store(self.engine.subscription_count(), Ordering::Relaxed);
                self.outbox
                    .send(conn, BrokerToClient::UnsubAck { id }.encode());
                self.flood_broker_message(&BrokerToBroker::SubRemove { id }, None);
            }
            ClientToBroker::Publish { event } => {
                if self.client_of(conn).is_none() {
                    self.client_error(conn, "publish before hello".into());
                    return;
                }
                let tree = match self.config.fabric.tree_for(self.config.broker) {
                    Ok(t) => t,
                    Err(e) => {
                        self.client_error(conn, e.to_string());
                        return;
                    }
                };
                self.stats.published.fetch_add(1, Ordering::Relaxed);
                self.route_and_dispatch(event, tree);
            }
            ClientToBroker::Ack { seq } => {
                if let Some(client) = self.client_of(conn) {
                    if let Some(state) = self.clients.get_mut(&client) {
                        state.log.ack(seq);
                    }
                }
            }
            ClientToBroker::StatsRequest => {
                self.outbox.send(
                    conn,
                    BrokerToClient::Stats {
                        published: self.stats.published.load(Ordering::Relaxed),
                        forwarded: self.stats.forwarded.load(Ordering::Relaxed),
                        delivered: self.stats.delivered.load(Ordering::Relaxed),
                        errors: self.stats.errors.load(Ordering::Relaxed),
                        subscriptions: self.engine.subscription_count() as u64,
                    }
                    .encode(),
                );
            }
        }
    }

    fn handle_broker(&mut self, conn: ConnId, message: BrokerToBroker) {
        match message {
            BrokerToBroker::Hello { broker } => {
                self.conns.insert(conn, Peer::Broker(broker));
                self.neighbors.insert(broker, conn);
                // Anti-entropy: a (re-)connecting neighbor may have missed
                // subscription traffic (e.g. it restarted); replay the full
                // set. Duplicates are dropped by the flood dedup.
                self.resync_subscriptions(conn);
            }
            BrokerToBroker::Forward { tree, event } => {
                self.route_and_dispatch(event, tree);
            }
            BrokerToBroker::SubAdd {
                schema,
                subscription,
            } => {
                if self.engine.knows(subscription.id()) {
                    return; // flood dedup on cyclic broker graphs
                }
                let id = subscription.id();
                if self.engine.subscribe(schema, subscription.clone()).is_ok() {
                    self.stats
                        .subscriptions
                        .store(self.engine.subscription_count(), Ordering::Relaxed);
                    self.flood_broker_message(
                        &BrokerToBroker::SubAdd {
                            schema,
                            subscription,
                        },
                        Some(conn),
                    );
                } else {
                    debug_assert!(false, "replicated subscription {id} failed to install");
                }
            }
            BrokerToBroker::SubRemove { id } => {
                if self.engine.unsubscribe(id) {
                    self.stats
                        .subscriptions
                        .store(self.engine.subscription_count(), Ordering::Relaxed);
                    self.flood_broker_message(&BrokerToBroker::SubRemove { id }, Some(conn));
                }
            }
        }
    }

    /// Link matching plus dispatch: forward to neighbor brokers, append to
    /// local client logs (and push to connected clients).
    fn route_and_dispatch(&mut self, event: Event, tree: TreeId) {
        let mut stats = MatchStats::new();
        let links = self.engine.route(&event, tree, &mut stats);
        let network = self.config.fabric.network();
        for link in links {
            match network.link_target(self.config.broker, link) {
                LinkTarget::Broker(neighbor) => {
                    if let Some(&conn) = self.neighbors.get(&neighbor) {
                        self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                        self.outbox.send(
                            conn,
                            BrokerToBroker::Forward {
                                tree,
                                event: event.clone(),
                            }
                            .encode(),
                        );
                    }
                    // An unconnected neighbor is a partition: the event is
                    // dropped for that subtree (no spooling across broker
                    // links in this prototype).
                }
                LinkTarget::Client(client) => {
                    let state = self.clients.entry(client).or_insert_with(|| ClientState {
                        conn: None,
                        log: EventLog::new(),
                        disconnected_at: Some(std::time::Instant::now()),
                    });
                    let seq = state.log.append(event.clone());
                    self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                    if let Some(conn) = state.conn {
                        self.outbox.send(
                            conn,
                            BrokerToClient::Deliver {
                                seq,
                                event: event.clone(),
                            }
                            .encode(),
                        );
                    }
                }
            }
        }
    }

    /// Sends every known subscription to a newly established broker link.
    fn resync_subscriptions(&self, conn: ConnId) {
        for (schema, subscription) in self.engine.all_subscriptions() {
            self.outbox.send(
                conn,
                BrokerToBroker::SubAdd {
                    schema,
                    subscription,
                }
                .encode(),
            );
        }
    }

    fn flood_broker_message(&self, message: &BrokerToBroker, except: Option<ConnId>) {
        let frame = message.encode();
        for (_, &conn) in self.neighbors.iter() {
            if Some(conn) != except {
                self.outbox.send(conn, frame.clone());
            }
        }
    }

    fn client_of(&self, conn: ConnId) -> Option<ClientId> {
        match self.conns.get(&conn) {
            Some(Peer::Client(c)) => Some(*c),
            _ => None,
        }
    }

    fn client_error(&self, conn: ConnId, message: String) {
        self.stats.errors.fetch_add(1, Ordering::Relaxed);
        self.outbox
            .send(conn, BrokerToClient::Error { message }.encode());
    }

    fn handle_disconnect(&mut self, conn: ConnId) {
        self.outbox.unregister(conn);
        match self.conns.remove(&conn) {
            Some(Peer::Client(client)) => {
                if let Some(state) = self.clients.get_mut(&client) {
                    if state.conn == Some(conn) {
                        // Keep the log: deliveries continue to accumulate
                        // for replay on reconnect (until the TTL).
                        state.conn = None;
                        state.disconnected_at = Some(std::time::Instant::now());
                    }
                }
            }
            Some(Peer::Broker(broker)) if self.neighbors.get(&broker) == Some(&conn) => {
                self.neighbors.remove(&broker);
            }
            _ => {}
        }
    }

    fn collect_garbage(&mut self) {
        let ttl = self.config.client_ttl;
        self.clients.retain(|_, state| {
            state.log.collect();
            state.log.enforce_bound(self.config.log_bound);
            // Reclaim state for clients gone longer than the TTL.
            state.disconnected_at.is_none_or(|at| at.elapsed() <= ttl)
        });
    }
}
