//! The broker node: connection manager, protocol state machine, and
//! lifecycle.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use linkcast::{LinkTarget, MatchCache, RouteScratch, RoutingFabric, TreeId};
use linkcast_matching::{MatchStats, PstOptions};
use linkcast_types::{
    BrokerId, ClientId, Event, LinkId, SchemaRegistry, SubscriberId, Subscription, SubscriptionId,
};
use parking_lot::{Mutex, RwLock};

use crate::control::{SubIdAllocator, TombstoneSet, SUB_COUNTER_BITS, SUB_ID_SPACE};
use crate::counters::{BrokerStats, Derived, Gauges, StatsInner};
use crate::engine::MatchingEngine;
use crate::log::{AckLog, EventLog};
use crate::outbox::{ConnId, Outbox, Sink};
use crate::protocol::{self, BrokerToBroker, BrokerToClient, ClientToBroker};
use crate::tcp::TcpTransport;
use crate::transport::{self, Transport};

/// How many received `Forward` frames a broker lets accumulate before it
/// pushes a cumulative `FwdAck` back over the link (the GC tick flushes
/// whatever is left, so acks also flow on idle links).
const FWD_ACK_EVERY: u64 = 64;

/// Initial (and minimum) redial backoff for supervised links.
const LINK_REDIAL_MIN: Duration = Duration::from_millis(50);
/// Redial backoff ceiling.
const LINK_REDIAL_MAX: Duration = Duration::from_secs(2);
/// How long a supervised link must survive before the redial backoff
/// resets to the minimum. A neighbor that accepts the TCP handshake and
/// then immediately dies (crash loop) keeps backing off instead of being
/// hot-redialed at the minimum interval forever.
const LINK_STABILITY_WINDOW: Duration = Duration::from_secs(2);

/// Saturating millisecond conversion for intervals stored in atomics.
fn duration_to_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1)
}

/// Configuration of one broker node.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// This broker's identity in the topology.
    pub broker: BrokerId,
    /// Shared topology + spanning trees (identical on every node).
    pub fabric: Arc<RoutingFabric>,
    /// Information spaces served.
    pub registry: Arc<SchemaRegistry>,
    /// PST options for the matching engine.
    pub options: PstOptions,
    /// Listen address; use port 0 to let the OS pick.
    pub listen: SocketAddr,
    /// The network the node binds and dials through:
    /// [`TcpTransport`] (the default) for real sockets, or a
    /// [`SimNet`](crate::SimNet) host for deterministic in-process
    /// clusters.
    pub transport: Arc<dyn Transport>,
    /// Size of the sending-thread pool.
    pub sender_threads: usize,
    /// Garbage-collection period for client event logs.
    pub gc_interval: Duration,
    /// Maximum retained entries per client log (older unacknowledged
    /// entries are dropped and counted as lost).
    pub log_bound: usize,
    /// How long a disconnected client's log is retained before the garbage
    /// collector reclaims it entirely. A client reconnecting later starts a
    /// fresh session (sequence numbers restart).
    pub client_ttl: Duration,
    /// Number of matching-worker shards. With the default `1`, matching
    /// runs inline on the engine thread and every operation is processed in
    /// arrival order. With `N > 1`, events are matched on a pool of worker
    /// threads sharded by information space (schema id modulo `N`):
    /// same-space events keep their order, but an event may be matched
    /// after a subscribe/unsubscribe that arrived behind it — a throughput
    /// mode for publish-heavy workloads, not a different protocol.
    pub match_shards: usize,
    /// Threads for fanning one PST walk out during matching
    /// (`Pst::matches_parallel`); `1` keeps the sequential trit search.
    /// Large subscription trees benefit; small trees fall back to the
    /// sequential path internally regardless of this setting.
    pub match_threads: usize,
    /// Route events through the arena-flattened matching walk (index-based
    /// node table + reusable scratch masks) instead of the boxed recursive
    /// search. Identical link sets either way — this is the A/B switch for
    /// the `broker_pipeline` benchmark's `arena` legs; leave it `true`
    /// everywhere else.
    pub match_arena: bool,
    /// Capacity of each match shard's result cache (entries), keyed by the
    /// event's *tested* attribute values and invalidated wholesale when the
    /// subscription set changes generation. `0` disables caching. Only
    /// consulted on the arena path (`match_arena = true`).
    pub match_cache_cap: usize,
    /// Maximum retained entries per broker-link spool. Events routed
    /// toward a neighbor are held (as stitched `Forward` frames) until the
    /// neighbor's cumulative acknowledgment; while a link is down the
    /// spool keeps growing up to this bound, after which the oldest
    /// unacknowledged frames are dropped and counted in
    /// [`BrokerStats::dropped_spool_overflow`].
    pub link_spool_bound: usize,
    /// How long a broker link may sit with no *received* traffic before the
    /// engine probes it with a `Ping`. Doubles as the heartbeat timer's
    /// tick period, so detection granularity is one interval. This is the
    /// initial value; [`BrokerNode::set_heartbeat_interval`] retunes a
    /// running node.
    pub heartbeat_interval: Duration,
    /// How long a broker link may stay completely silent (no frames at
    /// all — a live peer answers pings) before it is declared dead and torn
    /// down. The link spool keeps every unacknowledged frame, so the redial
    /// handshake retransmits and nothing is lost. Should be several
    /// heartbeat intervals.
    pub liveness_timeout: Duration,
    /// Per-connection cap on queued outgoing bytes. A client that crosses
    /// it (a subscriber that stopped reading) is evicted with a final
    /// `Error` frame; a broker peer that crosses it is disconnected and its
    /// spool retransmits after the redial. Either way one stalled consumer
    /// costs at most this much memory, not the broker.
    pub conn_queue_bound: u64,
    /// Graceful-shutdown drain deadline: how long [`BrokerNode::shutdown`]
    /// waits for queued frames (final acks, tail-of-stream deliveries) to
    /// flush before cutting stragglers off.
    pub drain_timeout: Duration,
    /// How long a dialed neighbor may take to send its first frame (the
    /// `Hello` handshake answer) before the link supervisor gives up and
    /// redials with backoff. A peer that accepts the TCP connection and
    /// then stalls would otherwise wedge the link forever.
    pub link_handshake_timeout: Duration,
    /// SO_SNDTIMEO applied to every TCP connection: a peer that stops
    /// reading while the kernel send buffer is full fails the write (and is
    /// disconnected) instead of wedging a sender-pool thread indefinitely.
    pub write_stall_timeout: Duration,
    /// Reproduces the pre-pipeline dataflow for A/B measurement: every
    /// outgoing `Forward`/`Deliver` frame re-serializes the event through
    /// the protocol enums, and the outbox writes one frame per syscall
    /// instead of draining queues with batched vectored writes. Protocol
    /// behavior is identical — only the per-event cost changes. This is the
    /// "before" leg of the `broker_pipeline` benchmark; leave it `false`
    /// everywhere else.
    pub seed_dataflow: bool,
}

impl BrokerConfig {
    /// A localhost configuration with OS-assigned port and default tuning.
    pub fn localhost(
        broker: BrokerId,
        fabric: Arc<RoutingFabric>,
        registry: Arc<SchemaRegistry>,
    ) -> Self {
        BrokerConfig {
            broker,
            fabric,
            registry,
            options: PstOptions::default(),
            // analyzer:allow(panic): startup-time parse of a literal address, not dataflow
            listen: "127.0.0.1:0".parse().expect("valid literal address"),
            transport: Arc::new(TcpTransport),
            sender_threads: 2,
            gc_interval: Duration::from_millis(250),
            log_bound: 4096,
            client_ttl: Duration::from_secs(3600),
            match_shards: 1,
            match_threads: 1,
            match_arena: true,
            match_cache_cap: 0,
            link_spool_bound: 32768,
            heartbeat_interval: Duration::from_millis(500),
            liveness_timeout: Duration::from_secs(5),
            conn_queue_bound: 8 * 1024 * 1024,
            drain_timeout: Duration::from_secs(1),
            link_handshake_timeout: Duration::from_secs(2),
            write_stall_timeout: Duration::from_secs(5),
            seed_dataflow: false,
        }
    }
}

pub(crate) enum Command {
    /// A frame payload (length prefix stripped) from a connection.
    Frame(ConnId, Bytes),
    /// The dialing side knows which neighbor it reached.
    DialedNeighbor(ConnId, BrokerId),
    /// A connection died (reader EOF/error or writer failure).
    Disconnected(ConnId),
    /// A matching-worker shard finished routing an event; the engine thread
    /// performs the dispatch (log appends and connection lookups stay
    /// single-threaded).
    Routed {
        event: Event,
        tree: TreeId,
        /// The event's wire encoding, sliced from the incoming frame.
        body: Bytes,
        links: Vec<LinkId>,
    },
    /// Periodic garbage collection of client logs.
    GcTick,
    /// Periodic liveness timer: ping idle broker links, tear down links
    /// silent past the liveness timeout.
    HeartbeatTick,
    /// A connection's outgoing queue crossed
    /// [`BrokerConfig::conn_queue_bound`] (reported once by the outbox);
    /// the engine picks the policy — client eviction or peer disconnect.
    QueueOverflow(ConnId),
    /// Stop the engine loop.
    Shutdown,
}

/// One unit of work for a matching-worker shard.
struct MatchJob {
    event: Event,
    tree: TreeId,
    /// The event's wire encoding, carried through so dispatch never
    /// re-serializes.
    body: Bytes,
}

enum Peer {
    Client(ClientId),
    Broker(BrokerId),
}

struct ClientState {
    conn: Option<ConnId>,
    log: EventLog,
    /// When the client's connection dropped (None while connected).
    disconnected_at: Option<std::time::Instant>,
}

/// A running broker node (also its handle: inspect stats, connect
/// neighbors, open local connections, shut down).
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use linkcast::{NetworkBuilder, RoutingFabric};
/// use linkcast_types::{EventSchema, SchemaRegistry, ValueKind};
/// use linkcast_broker::{BrokerConfig, BrokerNode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let b0 = b.add_broker();
/// let _client = b.add_client(b0)?;
/// let fabric = RoutingFabric::new_all_roots(b.build()?)?;
/// let mut registry = SchemaRegistry::new();
/// registry.register(
///     EventSchema::builder("trades")
///         .attribute("issue", ValueKind::Str)
///         .build()?,
/// )?;
/// let node = BrokerNode::start(BrokerConfig::localhost(b0, fabric, Arc::new(registry)))?;
/// println!("listening on {}", node.addr());
/// node.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct BrokerNode {
    broker: BrokerId,
    addr: SocketAddr,
    registry: Arc<SchemaRegistry>,
    cmd_tx: Sender<Command>,
    outbox: Arc<Outbox>,
    stats: Arc<StatsInner>,
    match_stats: Arc<Vec<Mutex<MatchStats>>>,
    shutdown: Arc<AtomicBool>,
    next_conn: Arc<AtomicU64>,
    /// [`BrokerConfig::transport`], kept for outbound dials.
    transport: Arc<dyn Transport>,
    /// [`BrokerConfig::drain_timeout`], kept for the shutdown path.
    drain_timeout: Duration,
    /// [`BrokerConfig::link_handshake_timeout`], kept for link supervisors.
    link_handshake_timeout: Duration,
    /// Current heartbeat probe interval in milliseconds, shared with the
    /// ticker thread and the engine loop so it can be retuned at runtime.
    heartbeat_ms: Arc<AtomicU64>,
    engine_thread: Option<std::thread::JoinHandle<()>>,
    /// Joined on shutdown so the listener is unbound before `shutdown`
    /// returns — a restart re-binding the same address must not race the
    /// old acceptor's last wakeup.
    acceptor_thread: Option<std::thread::JoinHandle<()>>,
}

impl BrokerNode {
    /// Starts the node: binds the listener, spawns the engine loop, the
    /// sender pool, the acceptor, and the GC ticker.
    ///
    /// # Errors
    ///
    /// I/O errors from binding, or engine construction errors (boxed).
    pub fn start(config: BrokerConfig) -> Result<BrokerNode, Box<dyn std::error::Error>> {
        let listener = config.transport.bind(config.listen)?;
        let addr = listener.local_addr()?;

        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let (dead_tx, dead_rx) = unbounded::<ConnId>();
        let (overflow_tx, overflow_rx) = unbounded::<ConnId>();
        let drain_batch = if config.seed_dataflow {
            1
        } else {
            crate::outbox::DRAIN_BATCH
        };
        let outbox = Outbox::new(
            config.sender_threads.max(1),
            drain_batch,
            config.conn_queue_bound,
            Some(config.write_stall_timeout),
            dead_tx,
            overflow_tx,
        )?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let next_conn = Arc::new(AtomicU64::new(1));

        // Forward writer deaths into the command stream.
        {
            let cmd_tx = cmd_tx.clone();
            std::thread::Builder::new()
                .name("dead-conn-fwd".into())
                .spawn(move || {
                    for conn in dead_rx.iter() {
                        if cmd_tx.send(Command::Disconnected(conn)).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // Forward queue overflows into the command stream (the engine owns
        // the peer table, so only it can pick eviction vs. disconnect).
        {
            let cmd_tx = cmd_tx.clone();
            std::thread::Builder::new()
                .name("overflow-fwd".into())
                .spawn(move || {
                    for conn in overflow_rx.iter() {
                        if cmd_tx.send(Command::QueueOverflow(conn)).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // GC ticker.
        {
            let cmd_tx = cmd_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let interval = config.gc_interval;
            std::thread::Builder::new()
                .name("gc-ticker".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(interval);
                        if cmd_tx.send(Command::GcTick).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // Heartbeat ticker: the engine thread does the actual liveness
        // bookkeeping; this thread only provides the clock edge. The
        // interval lives in a shared atomic so `set_heartbeat_interval`
        // can retune a running node; sleeping in short quanta (rather
        // than one full interval) bounds how long a retune takes to bite.
        let heartbeat_ms = Arc::new(AtomicU64::new(duration_to_ms(config.heartbeat_interval)));
        {
            let cmd_tx = cmd_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let heartbeat_ms = Arc::clone(&heartbeat_ms);
            std::thread::Builder::new()
                .name("heartbeat-ticker".into())
                .spawn(move || {
                    let mut last_tick = std::time::Instant::now();
                    while !shutdown.load(Ordering::Acquire) {
                        let interval =
                            Duration::from_millis(heartbeat_ms.load(Ordering::Relaxed).max(1));
                        std::thread::sleep(interval.min(Duration::from_millis(100)));
                        if last_tick.elapsed() < interval {
                            continue;
                        }
                        last_tick = std::time::Instant::now();
                        if cmd_tx.send(Command::HeartbeatTick).is_err() {
                            break;
                        }
                    }
                })?;
        }

        // Acceptor.
        let acceptor_thread = transport::spawn_acceptor(
            listener,
            cmd_tx.clone(),
            Arc::clone(&outbox),
            Arc::clone(&next_conn),
            Arc::clone(&shutdown),
        )?;

        // Matching engine, shared read-mostly between the engine thread
        // (writes on subscribe/unsubscribe, reads when matching inline) and
        // the matching-worker shards (reads only).
        let engine = Arc::new(RwLock::new(MatchingEngine::new(
            config.broker,
            &config.fabric,
            Arc::clone(&config.registry),
            config.options.clone(),
        )?));
        let shards = config.match_shards.max(1);
        let match_stats: Arc<Vec<Mutex<MatchStats>>> =
            Arc::new((0..shards).map(|_| Mutex::new(MatchStats::new())).collect());

        // Matching-worker shards (only when configured): each worker owns
        // the PST walk for its share of the information spaces and hands
        // the routed link set back to the engine thread for dispatch.
        let mut shard_txs: Vec<Sender<MatchJob>> = Vec::new();
        if config.match_shards > 1 {
            for shard in 0..config.match_shards {
                let (tx, rx) = unbounded::<MatchJob>();
                let engine = Arc::clone(&engine);
                let cmd_tx = cmd_tx.clone();
                let shard_stats = Arc::clone(&match_stats);
                let threads = config.match_threads;
                let use_arena = config.match_arena;
                let cache_cap = config.match_cache_cap;
                std::thread::Builder::new()
                    .name(format!("match-{}-{shard}", config.broker))
                    .spawn(move || {
                        // Shard-owned, so no lock guards the cache or the
                        // scratch masks: each worker serializes its own
                        // information spaces by construction.
                        let mut cache = MatchCache::new(cache_cap);
                        let mut scratch = RouteScratch::new();
                        for job in rx.iter() {
                            let mut local = MatchStats::new();
                            let mut links = Vec::new();
                            if use_arena {
                                engine.read().route_cached(
                                    &job.event,
                                    job.tree,
                                    threads,
                                    &mut cache,
                                    &mut scratch,
                                    &mut local,
                                    &mut links,
                                );
                            } else {
                                links = engine
                                    .read()
                                    .route_parallel(&job.event, job.tree, threads, &mut local);
                            }
                            if let Some(shard_stats) = shard_stats.get(shard) {
                                *shard_stats.lock() += local;
                            }
                            let routed = Command::Routed {
                                event: job.event,
                                tree: job.tree,
                                body: job.body,
                                links,
                            };
                            if cmd_tx.send(routed).is_err() {
                                break;
                            }
                        }
                    })?;
                shard_txs.push(tx);
            }
        }

        // Engine loop.
        let engine_thread = {
            let outbox = Arc::clone(&outbox);
            let stats = Arc::clone(&stats);
            let match_stats = Arc::clone(&match_stats);
            let config2 = config.clone();
            let heartbeat_ms = Arc::clone(&heartbeat_ms);
            std::thread::Builder::new()
                .name(format!("broker-{}", config.broker))
                .spawn(move || {
                    EngineLoop {
                        match_cache: MatchCache::new(config2.match_cache_cap),
                        route_scratch: RouteScratch::new(),
                        config: config2,
                        incarnation: mint_incarnation(),
                        engine,
                        outbox,
                        stats,
                        match_stats,
                        shard_txs,
                        conns: HashMap::new(),
                        clients: HashMap::new(),
                        neighbors: HashMap::new(),
                        awaiting_hello: HashSet::new(),
                        spools: HashMap::new(),
                        recv_from: HashMap::new(),
                        tombstones: TombstoneSet::default(),
                        sub_ids: SubIdAllocator::new(),
                        last_heard: HashMap::new(),
                        heartbeat_ms,
                    }
                    .run(cmd_rx)
                })?
        };

        Ok(BrokerNode {
            broker: config.broker,
            addr,
            registry: config.registry,
            cmd_tx,
            outbox,
            stats,
            match_stats,
            shutdown,
            next_conn,
            transport: config.transport,
            drain_timeout: config.drain_timeout,
            link_handshake_timeout: config.link_handshake_timeout,
            heartbeat_ms,
            engine_thread: Some(engine_thread),
            acceptor_thread: Some(acceptor_thread),
        })
    }

    /// This broker's id.
    pub fn broker(&self) -> BrokerId {
        self.broker
    }

    /// Retunes the heartbeat probe interval on a running node (ops tuning
    /// without a restart; benches use it to toggle the sweep). Takes
    /// effect within one ticker quantum (at most ~100 ms). The liveness
    /// timeout is a detection policy, not a tuning knob, and stays fixed.
    pub fn set_heartbeat_interval(&self, interval: Duration) {
        self.heartbeat_ms
            .store(duration_to_ms(interval), Ordering::Relaxed);
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The information spaces served.
    pub fn registry(&self) -> &Arc<SchemaRegistry> {
        &self.registry
    }

    /// Dials a neighbor broker and performs the broker-protocol handshake.
    /// Call once per topology link (one side suffices; conventionally the
    /// higher-id broker dials).
    ///
    /// # Errors
    ///
    /// Connection I/O errors.
    pub fn connect_to(&self, neighbor: BrokerId, addr: SocketAddr) -> std::io::Result<()> {
        let connection = self.transport.dial(addr)?;
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.outbox.register(conn, Sink::Link(connection.writer));
        // The engine sends the `Hello` when it processes `DialedNeighbor`:
        // the handshake carries per-link sequence state only the engine
        // thread knows.
        let _ = self.cmd_tx.send(Command::DialedNeighbor(conn, neighbor));
        transport::spawn_reader(
            connection.reader,
            conn,
            self.cmd_tx.clone(),
            Arc::clone(&self.shutdown),
        );
        Ok(())
    }

    /// Like [`BrokerNode::connect_to`], but supervised: if the link drops
    /// (or the first dial fails), a background thread redials with
    /// exponential backoff until the node shuts down. The backoff resets
    /// only after a link has survived a stability window, so a neighbor
    /// stuck in an accept-then-crash loop is not hot-redialed at the
    /// minimum interval. On every (re-)establishment both sides exchange
    /// `Hello` handshakes that resync their full subscription sets *and*
    /// their per-link spool state: events routed toward the neighbor while
    /// the link was down were spooled (up to
    /// [`BrokerConfig::link_spool_bound`]) and are retransmitted after the
    /// handshake, with receiver-side sequence dedup discarding any copies
    /// that had already crossed before the flap — at-least-once across the
    /// link, exactly-once into client logs.
    pub fn connect_to_persistent(&self, neighbor: BrokerId, addr: SocketAddr) {
        let cmd_tx = self.cmd_tx.clone();
        let outbox = Arc::clone(&self.outbox);
        let next_conn = Arc::clone(&self.next_conn);
        let shutdown = Arc::clone(&self.shutdown);
        let transport = Arc::clone(&self.transport);
        let handshake_timeout = self.link_handshake_timeout;
        let me = self.broker;
        let _ = std::thread::Builder::new()
            .name(format!("link-{me}-{neighbor}"))
            .spawn(move || {
                let mut backoff = LINK_REDIAL_MIN;
                while !shutdown.load(Ordering::Acquire) {
                    // Dial failures (including per-connection setup inside
                    // the transport) back off instead of spin-dialing.
                    // Never panic here — that would kill the supervisor
                    // thread and orphan the link forever.
                    let Ok(connection) = transport.dial(addr) else {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(LINK_REDIAL_MAX);
                        continue;
                    };
                    let mut reader = connection.reader;
                    let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                    outbox.register(conn, crate::outbox::Sink::Link(connection.writer));
                    // The engine answers `DialedNeighbor` with the `Hello`
                    // handshake (it owns the spool/sequence state).
                    if cmd_tx
                        .send(Command::DialedNeighbor(conn, neighbor))
                        .is_err()
                    {
                        return;
                    }
                    let established = std::time::Instant::now();
                    // A peer that accepted the dial owes us its `Hello` (its
                    // first frame) within the handshake deadline; one that
                    // accepts and then stalls must not wedge this supervisor.
                    let handshake_deadline = established + handshake_timeout;
                    let mut greeted = false;
                    // Inline read loop; on link death, fall through to redial.
                    loop {
                        if shutdown.load(Ordering::Acquire) {
                            return;
                        }
                        match transport::read_frame(&mut reader) {
                            Ok(Some(payload)) => {
                                greeted = true;
                                if cmd_tx.send(Command::Frame(conn, payload)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => {
                                if !greeted && std::time::Instant::now() >= handshake_deadline {
                                    // Handshake never completed: tear the
                                    // conn down (the engine unregisters it,
                                    // closing the socket) and take the
                                    // backoff path like a failed dial.
                                    let _ = cmd_tx.send(Command::Disconnected(conn));
                                    break;
                                }
                                continue;
                            }
                            Err(_) => {
                                let _ = cmd_tx.send(Command::Disconnected(conn));
                                break;
                            }
                        }
                    }
                    // Only a link that proved stable (handshake included)
                    // earns a backoff reset; an accept-then-die or
                    // accept-then-stall neighbor keeps escalating.
                    backoff = if greeted && established.elapsed() >= LINK_STABILITY_WINDOW {
                        LINK_REDIAL_MIN
                    } else {
                        (backoff * 2).min(LINK_REDIAL_MAX)
                    };
                    std::thread::sleep(backoff);
                }
            });
    }

    /// Opens an in-process connection (bypassing TCP). The returned pair is
    /// a sender for client frames and a receiver of broker frames — used by
    /// tests and the throughput benchmark.
    pub fn open_local(&self) -> LocalConn {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded::<Bytes>();
        self.outbox.register(conn, Sink::Chan(tx));
        LocalConn {
            conn,
            cmd_tx: self.cmd_tx.clone(),
            rx,
            registry: Arc::clone(&self.registry),
        }
    }

    /// A snapshot of the broker's counters.
    pub fn stats(&self) -> BrokerStats {
        let (queued_frames, queued_bytes) = self.outbox.queue_depth();
        let matching = self.match_stats();
        self.stats.broker_stats(
            Derived {
                match_cache_hits: matching.cache_hits,
                match_cache_misses: matching.cache_misses,
                match_cache_invalidations: matching.cache_invalidations,
            },
            Gauges {
                queued_frames,
                queued_bytes,
                connections: self.outbox.connections(),
            },
        )
    }

    /// Aggregated matching cost across the inline path and every
    /// matching-worker shard.
    pub fn match_stats(&self) -> MatchStats {
        let mut total = MatchStats::new();
        for shard_stats in self.match_stats.iter() {
            total += *shard_stats.lock();
        }
        total
    }

    /// Stops the node: the engine loop exits, the acceptor stops, reader
    /// threads wind down at their next poll.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // The flag stops the acceptor (no new connections join the drain)
        // and winds reader threads down at their next poll.
        self.shutdown.store(true, Ordering::Release);
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(t) = self.engine_thread.take() {
            // The engine flushes its final cumulative acks before exiting,
            // so they are in the outbox queues when the drain starts.
            let _ = t.join();
        }
        if let Some(t) = self.acceptor_thread.take() {
            // Bounded by one accept quantum: joining proves the listener is
            // dropped, so the address is free the moment shutdown returns.
            let _ = t.join();
        }
        // Drain phase: flush every queue with a deadline and FIN each peer
        // as its queue empties, so neighbors trim their spools and restarts
        // don't open on avoidable retransmit storms. Stragglers past the
        // deadline are cut off; the sender pool winds down either way.
        self.outbox.drain_all(self.drain_timeout);
    }
}

impl Drop for BrokerNode {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for BrokerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerNode")
            .field("broker", &self.broker)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// An in-process connection to a broker (see [`BrokerNode::open_local`]).
pub struct LocalConn {
    conn: ConnId,
    cmd_tx: Sender<Command>,
    rx: Receiver<Bytes>,
    registry: Arc<SchemaRegistry>,
}

impl LocalConn {
    /// Sends a client-protocol message to the broker.
    pub fn send(&self, message: &ClientToBroker) {
        let frame = message.encode();
        // The engine expects the payload without the length prefix.
        let payload = frame.slice(4..);
        let _ = self.cmd_tx.send(Command::Frame(self.conn, payload));
    }

    /// Receives the next broker-protocol message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`crate::ClientError`] on timeout or malformed frames.
    pub fn recv(&self, timeout: Duration) -> Result<BrokerToClient, crate::ClientError> {
        let frame = self
            .rx
            .recv_timeout(timeout)
            .map_err(|_| crate::ClientError::Timeout)?;
        let payload = frame.slice(4..);
        BrokerToClient::decode(payload, &self.registry)
            .map_err(|e| crate::ClientError::Protocol(e.to_string()))
    }
}

impl Drop for LocalConn {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Command::Disconnected(self.conn));
    }
}

/// Mints a nonzero nonce for one broker lifetime: a process-wide counter
/// in the high bits (restarts within one process — the common test and
/// embedded-cluster case — always differ) salted with startup time in the
/// low bits (so counter collisions across separate processes still
/// differ in practice).
fn mint_incarnation() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    (COUNTER.fetch_add(1, Ordering::Relaxed) << 32) | (nanos & 0xffff_ffff)
}

struct EngineLoop {
    config: BrokerConfig,
    /// This broker lifetime's nonce, announced in every link `Hello` so
    /// peers can tell a restart (fresh sequence space, empty spool) from
    /// a mere reconnect. See [`BrokerToBroker::Hello`].
    incarnation: u64,
    engine: Arc<RwLock<MatchingEngine>>,
    outbox: Arc<Outbox>,
    stats: Arc<StatsInner>,
    /// Per-shard matching cost (slot 0 doubles as the inline path's slot).
    match_stats: Arc<Vec<Mutex<MatchStats>>>,
    /// Matching-worker inboxes; empty means matching runs inline.
    shard_txs: Vec<Sender<MatchJob>>,
    /// The inline path's match-result cache (engine-thread-owned; the
    /// worker shards each own their own — no lock anywhere).
    match_cache: MatchCache,
    /// The inline path's reusable matching buffers (scratch masks, walk
    /// frames, parallel worker state).
    route_scratch: RouteScratch,
    conns: HashMap<ConnId, Peer>,
    clients: HashMap<ClientId, ClientState>,
    neighbors: HashMap<BrokerId, ConnId>,
    /// Dialed neighbor conns whose peer `Hello` has not arrived yet.
    /// `Forward` traffic is held back (it stays in the spool) until the
    /// handshake completes: sending fresh higher-seq frames before
    /// `retransmit_spool` replays the backlog would make the receiver's
    /// cumulative dedup drop the retransmissions as duplicates — silent
    /// event loss on every reconnect that overlaps a dispatch.
    awaiting_hello: HashSet<ConnId>,
    /// Per-neighbor send-side spool: stitched `Forward` frames retained
    /// until the neighbor's cumulative `FwdAck`, replayed after a link
    /// flap. Keyed by broker (not conn) so the spool survives the link.
    spools: HashMap<BrokerId, AckLog<Bytes>>,
    /// Per-neighbor receive-side sequence window for dedup and ack pacing.
    recv_from: HashMap<BrokerId, NeighborRecv>,
    /// Removed subscription ids, so the anti-entropy resync cannot
    /// resurrect an unsubscribe that flooded while a link was down.
    tombstones: TombstoneSet,
    sub_ids: SubIdAllocator,
    /// When each connection last produced a frame (any frame — heartbeats
    /// only guarantee an idle link still produces *some*). The heartbeat
    /// tick reads the broker-link entries; client entries exist only so
    /// `handle_frame` can update blindly, and are dropped in `forget_conn`.
    last_heard: HashMap<ConnId, std::time::Instant>,
    /// Current heartbeat probe interval in milliseconds (shared with the
    /// ticker thread; retunable via [`BrokerNode::set_heartbeat_interval`]).
    heartbeat_ms: Arc<AtomicU64>,
}

/// Receive-side state for one neighbor link.
#[derive(Debug, Default)]
struct NeighborRecv {
    /// Highest event sequence accepted from this neighbor. Lower or equal
    /// sequences are retransmissions and are dropped (the link is a TCP
    /// stream, so arrival is FIFO and a cumulative mark suffices).
    seq: u64,
    /// Highest sequence we have acknowledged back to the neighbor.
    acked_sent: u64,
    /// The neighbor incarnation `seq` was accumulated under (0 = none
    /// seen yet). A handshake announcing a different incarnation resets
    /// the window: the neighbor restarted, its sequence space is fresh,
    /// and the old high-water mark would dedup-drop live frames.
    peer_incarnation: u64,
}

impl EngineLoop {
    fn run(mut self, cmd_rx: Receiver<Command>) {
        for command in cmd_rx.iter() {
            match command {
                Command::Frame(conn, payload) => self.handle_frame(conn, payload),
                Command::DialedNeighbor(conn, neighbor) => {
                    self.conns.insert(conn, Peer::Broker(neighbor));
                    self.install_neighbor_conn(neighbor, conn);
                    // Start the liveness clock: the peer owes us its Hello.
                    self.last_heard.insert(conn, std::time::Instant::now());
                    // Control traffic (Hello, resync, floods) flows right
                    // away, but Forward dispatch stays spooled-only until
                    // the peer's Hello arrives and the spool is replayed —
                    // see `awaiting_hello`.
                    self.awaiting_hello.insert(conn);
                    self.send_hello(conn, neighbor);
                    self.resync_subscriptions(conn);
                }
                Command::Disconnected(conn) => self.handle_disconnect(conn),
                Command::Routed {
                    event,
                    tree,
                    body,
                    links,
                } => self.dispatch(&event, tree, &body, links),
                Command::GcTick => self.collect_garbage(),
                Command::HeartbeatTick => self.heartbeat_tick(),
                Command::QueueOverflow(conn) => self.handle_queue_overflow(conn),
                Command::Shutdown => {
                    // Final courtesy: push cumulative acks for everything
                    // received but not yet acked, so surviving neighbors
                    // trim their spools instead of retransmitting the tail
                    // at our restart. The frames flush in the drain phase.
                    self.flush_forward_acks();
                    break;
                }
            }
        }
        // Dropping self drops the shard senders; workers drain and exit.
    }

    fn handle_frame(&mut self, conn: ConnId, payload: Bytes) {
        let Some(&tag) = payload.first() else {
            return;
        };
        // Any decodable-or-not frame proves the peer's send path is alive;
        // the heartbeat tick consumes this for broker links.
        self.last_heard.insert(conn, std::time::Instant::now());
        if tag < 0x10 {
            // `payload` is cloned (a refcount bump) so the data-plane arms
            // can slice the already-encoded event body out of it instead of
            // re-serializing the decoded event.
            match ClientToBroker::decode(payload.clone(), &self.config.registry) {
                Ok(ClientToBroker::Publish { event }) => {
                    let body = payload.slice(protocol::PUBLISH_BODY_OFFSET..);
                    self.handle_publish(conn, event, body);
                }
                Ok(msg) => self.handle_client(conn, msg),
                Err(e) => self.protocol_error_disconnect(conn, e.to_string()),
            }
        } else if (0x21..=0x2f).contains(&tag) {
            match BrokerToBroker::decode(payload.clone(), &self.config.registry) {
                Ok(BrokerToBroker::Forward { tree, seq, event }) => {
                    let body = payload.slice(protocol::FORWARD_BODY_OFFSET..);
                    self.handle_forward(conn, tree, seq, event, body);
                }
                Ok(msg) => self.handle_broker(conn, msg),
                Err(e) => self.protocol_error_disconnect(conn, e.to_string()),
            }
        } else {
            self.protocol_error_disconnect(conn, format!("unexpected message tag {tag:#x}"));
        }
    }

    /// A peer sent something undecodable. A corrupt payload means the
    /// stream's framing can no longer be trusted, so rather than guess at
    /// the next message boundary the broker counts the error and drops the
    /// connection — the socket shutdown is what the peer observes (a
    /// dialing neighbor's link supervisor sees the EOF and redials with a
    /// fresh handshake). Clients additionally get the reason as an `Error`
    /// frame, flushed before the FIN; broker peers do not, because
    /// `BrokerToClient::Error` is an unexpected tag on a broker-broker
    /// link and would itself count as a protocol error on the remote side.
    /// Semantically invalid but *well-formed* requests (unknown schema on
    /// subscribe, publish before hello) go through `client_error` instead
    /// and keep the connection.
    fn protocol_error_disconnect(&mut self, conn: ConnId, message: String) {
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        if matches!(self.conns.get(&conn), Some(Peer::Broker(_))) {
            self.handle_disconnect(conn);
            return;
        }
        self.client_error(conn, message);
        self.outbox.close_after_flush(conn);
        self.forget_conn(conn);
    }

    fn handle_publish(&mut self, conn: ConnId, event: Event, body: Bytes) {
        if self.client_of(conn).is_none() {
            self.client_error(conn, "publish before hello".into());
            return;
        }
        // Reject events too large to re-stitch as Forward/Deliver frames
        // before they enter routing; an unchecked body would either
        // truncate the `u32` length prefix or flap the downstream link
        // (retransmit → peer reject → disconnect → retransmit) forever.
        if let Err(e) = crate::protocol::check_event_body(body.len()) {
            self.client_error(conn, e.to_string());
            return;
        }
        let tree = match self.config.fabric.tree_for(self.config.broker) {
            Ok(t) => t,
            Err(e) => {
                self.client_error(conn, e.to_string());
                return;
            }
        };
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        self.route_and_dispatch(event, tree, body);
    }

    fn handle_client(&mut self, conn: ConnId, message: ClientToBroker) {
        match message {
            ClientToBroker::Hello {
                client,
                resume_from,
            } => {
                let home = self.config.fabric.network().home_broker(client);
                if home != Some(self.config.broker) {
                    self.client_error(
                        conn,
                        format!(
                            "client {client} is not homed at broker {}",
                            self.config.broker
                        ),
                    );
                    return;
                }
                self.conns.insert(conn, Peer::Client(client));
                let state = self.clients.entry(client).or_insert_with(|| ClientState {
                    conn: None,
                    log: EventLog::new(),
                    disconnected_at: None,
                });
                state.conn = Some(conn);
                state.disconnected_at = None;
                state.log.ack(resume_from);
                let acked = state.log.acked();
                self.outbox.send(
                    conn,
                    BrokerToClient::Welcome {
                        client,
                        resume_from: acked,
                    }
                    .encode(),
                );
                // Replay what the client missed while disconnected.
                let frames: Vec<Bytes> = state
                    .log
                    .replay_after(acked)
                    .map(|(seq, event)| {
                        BrokerToClient::Deliver {
                            seq,
                            event: event.clone(),
                        }
                        .encode()
                    })
                    .collect();
                for frame in frames {
                    self.outbox.send(conn, frame);
                }
            }
            ClientToBroker::Subscribe { schema, expression } => {
                let Some(client) = self.client_of(conn) else {
                    self.client_error(conn, "subscribe before hello".into());
                    return;
                };
                let predicate = match self.engine.read().parse_subscription(schema, &expression) {
                    Ok(p) => p,
                    Err(e) => {
                        self.client_error(conn, e.to_string());
                        return;
                    }
                };
                // Globally unique id: 12 bits of broker, 20 bits of
                // per-broker counter (recycled after unsubscribe, so churn
                // never wedges the broker — only concurrency is capped).
                let Some(raw) = self.sub_ids.allocate() else {
                    self.client_error(conn, "subscription id space exhausted".into());
                    return;
                };
                let id = SubscriptionId::new((self.config.broker.raw() << SUB_COUNTER_BITS) | raw);
                // A recycled id must not be shadowed by its previous life's
                // tombstone.
                self.tombstones.remove(id);
                let subscription =
                    Subscription::new(id, SubscriberId::new(self.config.broker, client), predicate);
                let result = {
                    let mut engine = self.engine.write();
                    let r = engine.subscribe(schema, subscription.clone());
                    (r, engine.subscription_count())
                };
                match result.0 {
                    Ok(()) => {
                        self.stats
                            .subscriptions
                            .store(result.1 as u64, Ordering::Relaxed);
                        self.outbox
                            .send(conn, BrokerToClient::SubAck { id }.encode());
                        // Control plane: flood to every neighbor.
                        self.flood_broker_message(
                            &BrokerToBroker::SubAdd {
                                schema,
                                subscription,
                                resync: false,
                            },
                            None,
                        );
                    }
                    Err(e) => self.client_error(conn, e.to_string()),
                }
            }
            ClientToBroker::Unsubscribe { id } => {
                let Some(client) = self.client_of(conn) else {
                    self.client_error(conn, "unsubscribe before hello".into());
                    return;
                };
                let owned = self
                    .engine
                    .read()
                    .subscription(id)
                    .is_some_and(|s| s.subscriber().client == client);
                if !owned {
                    self.client_error(conn, format!("subscription {id} is not yours"));
                    return;
                }
                let remaining = {
                    let mut engine = self.engine.write();
                    engine.unsubscribe(id);
                    engine.subscription_count()
                };
                self.stats
                    .subscriptions
                    .store(remaining as u64, Ordering::Relaxed);
                // Tombstone the id (so a resync while some link is down
                // cannot resurrect it) and recycle its counter half.
                self.tombstones.insert(id);
                self.sub_ids.free(id.raw() & (SUB_ID_SPACE - 1));
                self.outbox
                    .send(conn, BrokerToClient::UnsubAck { id }.encode());
                self.flood_broker_message(&BrokerToBroker::SubRemove { id }, None);
            }
            ClientToBroker::Publish { event } => {
                // Normally intercepted in `handle_frame` with the body
                // sliced from the wire; this arm only serves locally
                // constructed messages, so it pays one serialization.
                let body = protocol::encode_event_body(&event);
                self.handle_publish(conn, event, body);
            }
            ClientToBroker::Ack { seq } => {
                if let Some(client) = self.client_of(conn) {
                    if let Some(state) = self.clients.get_mut(&client) {
                        state.log.ack(seq);
                    }
                }
            }
            ClientToBroker::StatsRequest => {
                let mut matching = MatchStats::new();
                for shard_stats in self.match_stats.iter() {
                    matching += *shard_stats.lock();
                }
                // `subscriptions` reads the stored gauge rather than
                // re-counting under the engine lock; it is refreshed on
                // every subscription change.
                let counters = self.stats.counters(Derived {
                    match_cache_hits: matching.cache_hits,
                    match_cache_misses: matching.cache_misses,
                    match_cache_invalidations: matching.cache_invalidations,
                });
                let frame = BrokerToClient::Stats(counters).encode();
                self.outbox.send(conn, frame);
            }
        }
    }

    fn handle_broker(&mut self, conn: ConnId, message: BrokerToBroker) {
        match message {
            BrokerToBroker::Hello {
                broker,
                incarnation,
                last_recv,
                last_recv_incarnation,
                send_seq,
            } => {
                // Reply with our own handshake only on a conn we have not
                // already greeted (the dialer side greeted on
                // `DialedNeighbor`); otherwise the pair would ping-pong
                // Hellos forever.
                let known = matches!(self.conns.get(&conn), Some(Peer::Broker(b)) if *b == broker);
                self.conns.insert(conn, Peer::Broker(broker));
                self.install_neighbor_conn(broker, conn);
                // Handshake complete: retransmit_spool (below) replays the
                // backlog over this conn, after which dispatch may send
                // fresh frames on it directly.
                self.awaiting_hello.remove(&conn);
                let recv = self.recv_from.entry(broker).or_default();
                if recv.peer_incarnation != incarnation {
                    // A new peer lifetime (restart, or first contact): its
                    // sequence space starts over, so the old high-water
                    // mark is meaningless — holding onto it would dedup-
                    // drop the fresh stream.
                    recv.peer_incarnation = incarnation;
                    recv.seq = 0;
                    recv.acked_sent = 0;
                } else if send_seq < recv.seq {
                    // Same lifetime but its send sequence regressed —
                    // should be impossible, kept as an independent guard
                    // against the silent-drop failure mode.
                    recv.seq = send_seq;
                    recv.acked_sent = recv.acked_sent.min(send_seq);
                }
                if !known {
                    self.send_hello(conn, broker);
                    // Anti-entropy: a (re-)connecting neighbor may have
                    // missed subscription traffic (e.g. it restarted);
                    // replay the full set. Duplicates are dropped by the
                    // flood dedup, dead ids by the tombstone filter.
                    self.resync_subscriptions(conn);
                }
                // The peer's `last_recv` is also a cumulative ack: trim the
                // spool, then retransmit everything it missed. But only if
                // it counts *our* frames: a mark recorded against an
                // earlier incarnation of us refers to a dead sequence
                // space — trimming by it would discard frames the peer
                // never saw (e.g. a frame spooled right after restart,
                // "acked" by a stale mark the old lifetime earned).
                let effective_last_recv = if last_recv_incarnation == self.incarnation {
                    last_recv
                } else {
                    0
                };
                self.retransmit_spool(broker, conn, effective_last_recv);
            }
            BrokerToBroker::FwdAck { seq } => {
                if let Some(Peer::Broker(broker)) = self.conns.get(&conn) {
                    if let Some(spool) = self.spools.get_mut(broker) {
                        spool.ack(seq);
                        spool.collect();
                    }
                }
            }
            BrokerToBroker::Forward { tree, seq, event } => {
                // Normally intercepted in `handle_frame` with the body
                // sliced from the wire; this arm only serves locally
                // constructed messages, so it pays one serialization.
                let body = protocol::encode_event_body(&event);
                self.handle_forward(conn, tree, seq, event, body);
            }
            BrokerToBroker::SubAdd {
                schema,
                subscription,
                resync,
            } => {
                let id = subscription.id();
                // A resynced add may be a resurrection: the neighbor never
                // saw the `SubRemove` that flooded while its link was down.
                // Ignoring it is not enough — the neighbor (and everything
                // behind it) still *holds* the stale subscription and would
                // keep routing on it forever. Push the removal back on the
                // same link; the receiver un-installs it and floods the
                // removal onward, so the partition-missed `SubRemove`
                // finally reaches every stale copy.
                if resync && self.tombstones.contains(id) {
                    self.outbox
                        .send(conn, BrokerToBroker::SubRemove { id }.encode());
                    return;
                }
                if self.engine.read().knows(id) {
                    return; // flood dedup on cyclic broker graphs
                }
                if !resync {
                    // A fresh add recycles the id: its previous life's
                    // tombstone no longer applies.
                    self.tombstones.remove(id);
                }
                let (installed, count) = {
                    let mut engine = self.engine.write();
                    let ok = engine.subscribe(schema, subscription.clone()).is_ok();
                    (ok, engine.subscription_count())
                };
                if installed {
                    self.stats
                        .subscriptions
                        .store(count as u64, Ordering::Relaxed);
                    self.flood_broker_message(
                        &BrokerToBroker::SubAdd {
                            schema,
                            subscription,
                            resync,
                        },
                        Some(conn),
                    );
                } else {
                    debug_assert!(false, "replicated subscription {id} failed to install");
                }
            }
            BrokerToBroker::Ping => {
                // Answer on the same conn: the pong's arrival refreshes the
                // peer's liveness clock for this link.
                self.outbox.send(conn, BrokerToBroker::Pong.encode());
            }
            BrokerToBroker::Pong => {
                // Its arrival already refreshed `last_heard` in
                // `handle_frame`; there is nothing else to do.
            }
            BrokerToBroker::SubRemove { id } => {
                // Tombstone-insert doubles as flood dedup: a removal we
                // already tombstoned has already been flooded onward.
                let newly_tombstoned = self.tombstones.insert(id);
                let (removed, count) = {
                    let mut engine = self.engine.write();
                    let ok = engine.unsubscribe(id);
                    (ok, engine.subscription_count())
                };
                if removed {
                    self.stats
                        .subscriptions
                        .store(count as u64, Ordering::Relaxed);
                }
                if removed || newly_tombstoned {
                    self.flood_broker_message(&BrokerToBroker::SubRemove { id }, Some(conn));
                }
            }
        }
    }

    /// Makes `conn` the single live conn for `broker`, tearing down any
    /// older conn to the same neighbor. Exactly one TCP stream per
    /// neighbor may carry sequenced `Forward` traffic: if an old stream
    /// lingered (e.g. its death is still undetected when the peer redials),
    /// frames could interleave across two streams and break the
    /// FIFO-arrival assumption the cumulative seq dedup relies on.
    fn install_neighbor_conn(&mut self, broker: BrokerId, conn: ConnId) {
        if let Some(old) = self.neighbors.insert(broker, conn) {
            if old != conn {
                self.outbox.unregister(old);
                self.conns.remove(&old);
                self.awaiting_hello.remove(&old);
                self.last_heard.remove(&old);
            }
        }
    }

    /// Sends the link handshake: our receive high-water mark (so the peer
    /// trims and retransmits its spool) and our send sequence (so the peer
    /// can detect that we restarted and reset its dedup window).
    fn send_hello(&mut self, conn: ConnId, neighbor: BrokerId) {
        let (last_recv, last_recv_incarnation) = self
            .recv_from
            .get(&neighbor)
            .map_or((0, 0), |r| (r.seq, r.peer_incarnation));
        let send_seq = self.spools.get(&neighbor).map_or(0, |s| s.last_seq());
        self.outbox.send(
            conn,
            BrokerToBroker::Hello {
                broker: self.config.broker,
                incarnation: self.incarnation,
                last_recv,
                last_recv_incarnation,
                send_seq,
            }
            .encode(),
        );
    }

    /// Trims the spool for `neighbor` to the peer's cumulative `last_recv`
    /// and retransmits every frame past it over `conn`.
    fn retransmit_spool(&mut self, neighbor: BrokerId, conn: ConnId, last_recv: u64) {
        let Some(spool) = self.spools.get_mut(&neighbor) else {
            return;
        };
        spool.ack(last_recv);
        spool.collect();
        let frames: Vec<Bytes> = spool
            .replay_after(spool.acked())
            .map(|(_, frame)| frame.clone())
            .collect();
        if frames.is_empty() {
            return;
        }
        self.stats
            .retransmitted
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        for frame in frames {
            self.outbox.send(conn, frame);
        }
    }

    /// An inbound `Forward`: dedup against the per-neighbor receive window,
    /// pace a cumulative `FwdAck` back, then route.
    fn handle_forward(&mut self, conn: ConnId, tree: TreeId, seq: u64, event: Event, body: Bytes) {
        // The tree id arrives as a raw index; an out-of-range value from a
        // corrupt or hostile peer would panic deep inside the matching
        // engine's per-tree tables. Treat it like any other undecodable
        // frame: count it and cut the link.
        if tree.index() >= self.config.fabric.forest().len() {
            self.protocol_error_disconnect(
                conn,
                format!("forward on unknown spanning tree {}", tree.index()),
            );
            return;
        }
        {
            let Some(Peer::Broker(broker)) = self.conns.get(&conn) else {
                // Not a registered broker peer — most likely an old stream
                // torn down when the neighbor redialed (see
                // `install_neighbor_conn`). Routing it would bypass the
                // dedup window; drop it instead (the live stream replays
                // anything unacknowledged).
                return;
            };
            let broker = *broker;
            let recv = self.recv_from.entry(broker).or_default();
            if seq <= recv.seq {
                // A retransmission of a frame that already crossed before
                // the flap: the spool is at-least-once, dedup restores
                // exactly-once into the routing layer.
                return;
            }
            recv.seq = seq;
            if recv.seq - recv.acked_sent >= FWD_ACK_EVERY {
                recv.acked_sent = recv.seq;
                let ack = BrokerToBroker::FwdAck { seq: recv.seq }.encode();
                self.outbox.send(conn, ack);
            }
        }
        self.route_and_dispatch(event, tree, body);
    }

    /// Link matching plus dispatch. `body` is the event's wire encoding
    /// (sliced from the incoming frame, or encoded exactly once for local
    /// messages); it rides through matching untouched so dispatch can
    /// stitch outgoing frames without re-serializing.
    ///
    /// With matching workers configured, the match runs on the shard owning
    /// the event's information space and the link set comes back as
    /// [`Command::Routed`]; otherwise everything happens inline, in arrival
    /// order.
    fn route_and_dispatch(&mut self, event: Event, tree: TreeId, body: Bytes) {
        if let Some(tx) = {
            let shards = self.shard_txs.len();
            (shards > 0).then(|| event.schema().id().raw() as usize % shards)
        }
        .and_then(|shard| self.shard_txs.get(shard))
        {
            let _ = tx.send(MatchJob { event, tree, body });
            return;
        }
        let mut stats = MatchStats::new();
        let mut links = Vec::new();
        if self.config.match_arena {
            self.engine.read().route_cached(
                &event,
                tree,
                self.config.match_threads,
                &mut self.match_cache,
                &mut self.route_scratch,
                &mut stats,
                &mut links,
            );
        } else {
            links = self.engine.read().route_parallel(
                &event,
                tree,
                self.config.match_threads,
                &mut stats,
            );
        }
        if let Some(shard_stats) = self.match_stats.first() {
            *shard_stats.lock() += stats;
        }
        self.dispatch(&event, tree, &body, links);
    }

    /// Dispatches a routed event: per-neighbor `Forward` frames (each link
    /// carries its own sequence header around the shared, already-encoded
    /// body) and one `Deliver` header per client around the same body.
    /// Runs on the engine thread only (log/spool appends and connection
    /// lookups are single-threaded).
    fn dispatch(&mut self, event: &Event, tree: TreeId, body: &Bytes, links: Vec<LinkId>) {
        let network = self.config.fabric.network();
        for link in links {
            match network.link_target(self.config.broker, link) {
                LinkTarget::Broker(neighbor) => {
                    // Spool first: the frame must survive a flap whether or
                    // not the link is currently up. An unconnected neighbor
                    // is no longer a silent drop — the spool replays after
                    // the reconnect handshake.
                    let spool = self.spools.entry(neighbor).or_default();
                    let seq = spool.last_seq() + 1;
                    let frame = if self.config.seed_dataflow {
                        BrokerToBroker::Forward {
                            tree,
                            seq,
                            event: event.clone(),
                        }
                        .encode()
                    } else {
                        protocol::forward_frame(tree, seq, body)
                    };
                    spool.append(frame.clone());
                    self.stats.spooled.fetch_add(1, Ordering::Relaxed);
                    if spool.len() > self.config.link_spool_bound {
                        let before = spool.lost();
                        spool.enforce_bound(self.config.link_spool_bound);
                        let dropped = spool.lost() - before;
                        self.stats
                            .dropped_spool_overflow
                            .fetch_add(dropped, Ordering::Relaxed);
                    }
                    // Direct sends wait for the reconnect handshake: on a
                    // conn still awaiting the peer's Hello the frame stays
                    // spool-only and `retransmit_spool` replays it in
                    // sequence order once the handshake lands (fresh
                    // higher-seq frames ahead of the replayed backlog would
                    // be mis-dropped by the receiver's cumulative dedup).
                    if let Some(&conn) = self.neighbors.get(&neighbor) {
                        if !self.awaiting_hello.contains(&conn) {
                            self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                            self.outbox.send(conn, frame);
                        }
                    }
                }
                LinkTarget::Client(client) => {
                    let state = self.clients.entry(client).or_insert_with(|| ClientState {
                        conn: None,
                        log: EventLog::new(),
                        disconnected_at: Some(std::time::Instant::now()),
                    });
                    let seq = state.log.append(event.clone());
                    self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                    if let Some(conn) = state.conn {
                        let frame = if self.config.seed_dataflow {
                            BrokerToClient::Deliver {
                                seq,
                                event: event.clone(),
                            }
                            .encode()
                        } else {
                            protocol::deliver_frame(seq, body)
                        };
                        self.outbox.send(conn, frame);
                    }
                }
            }
        }
    }

    /// Sends every known subscription to a newly established broker link.
    /// Marked `resync` so the receiver filters them against its tombstones
    /// instead of resurrecting subscriptions removed while the link was
    /// down.
    fn resync_subscriptions(&self, conn: ConnId) {
        // Snapshot under the read guard, then send with the guard dropped:
        // outbox sends while holding `engine` would stall the matching
        // shards behind a transport hiccup.
        let subscriptions = {
            let engine = self.engine.read();
            engine.all_subscriptions()
        };
        for (schema, subscription) in subscriptions {
            self.outbox.send(
                conn,
                BrokerToBroker::SubAdd {
                    schema,
                    subscription,
                    resync: true,
                }
                .encode(),
            );
        }
    }

    fn flood_broker_message(&self, message: &BrokerToBroker, except: Option<ConnId>) {
        let targets: Vec<ConnId> = self
            .neighbors
            .values()
            .copied()
            .filter(|&conn| Some(conn) != except)
            .collect();
        if targets.is_empty() {
            return;
        }
        let frame = message.encode();
        self.outbox.send_many(&targets, &frame);
    }

    fn client_of(&self, conn: ConnId) -> Option<ClientId> {
        match self.conns.get(&conn) {
            Some(Peer::Client(c)) => Some(*c),
            _ => None,
        }
    }

    fn client_error(&self, conn: ConnId, message: String) {
        self.stats.errors.fetch_add(1, Ordering::Relaxed);
        self.outbox
            .send(conn, BrokerToClient::Error { message }.encode());
    }

    /// One heartbeat-timer edge: walk the broker links, tear down any that
    /// stayed completely silent past the liveness timeout (half-open and
    /// stalled peers the kernel never reports — the spool keeps their
    /// frames and the redial handshake retransmits), and ping the merely
    /// idle ones so a live peer always has something to answer.
    fn heartbeat_tick(&mut self) {
        let now = std::time::Instant::now();
        // Snapshot: teardown mutates `neighbors`.
        let links: Vec<ConnId> = self.neighbors.values().copied().collect();
        for conn in links {
            let idle = match self.last_heard.get(&conn) {
                Some(&at) => now.saturating_duration_since(at),
                None => {
                    // A link installed before this feature had a clock (or
                    // raced the tick): start one now.
                    self.last_heard.insert(conn, now);
                    continue;
                }
            };
            if idle >= self.config.liveness_timeout {
                self.stats.liveness_timeouts.fetch_add(1, Ordering::Relaxed);
                // Immediate teardown (not flush-then-close): the peer is
                // unresponsive, and unregistering shuts the socket so both
                // our reader and a dialing supervisor notice and redial.
                self.handle_disconnect(conn);
            } else if idle.as_millis()
                >= u128::from(self.heartbeat_ms.load(Ordering::Relaxed).max(1))
            {
                self.stats.pings_sent.fetch_add(1, Ordering::Relaxed);
                self.outbox.send(conn, BrokerToBroker::Ping.encode());
            }
        }
    }

    /// A connection overran [`BrokerConfig::conn_queue_bound`]. Clients are
    /// evicted with a final flushed `Error` frame (their event logs survive
    /// for replay on reconnect); broker peers are disconnected without
    /// ceremony — their spools hold every unacknowledged frame and the
    /// redial handshake retransmits, so overflow costs a reconnect, not
    /// events.
    fn handle_queue_overflow(&mut self, conn: ConnId) {
        match self.conns.get(&conn) {
            Some(Peer::Client(_)) => {
                self.stats
                    .evicted_slow_consumers
                    .fetch_add(1, Ordering::Relaxed);
                let notice = BrokerToClient::Error {
                    message: "evicted: outgoing queue exceeded conn_queue_bound".into(),
                }
                .encode();
                self.outbox.evict(conn, Some(notice));
                self.forget_conn(conn);
            }
            Some(Peer::Broker(_)) => {
                self.stats
                    .peer_overflow_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                self.handle_disconnect(conn);
            }
            None => {
                // Overflow before the peer even said hello: nothing owed.
                self.outbox.evict(conn, None);
            }
        }
    }

    /// Pushes a cumulative `FwdAck` to every neighbor we owe one (received
    /// frames not yet acknowledged). Shared by the GC tick (idle links
    /// below the ack cadence) and the shutdown path.
    fn flush_forward_acks(&mut self) {
        for (&broker, recv) in self.recv_from.iter_mut() {
            if recv.seq > recv.acked_sent {
                if let Some(&conn) = self.neighbors.get(&broker) {
                    recv.acked_sent = recv.seq;
                    self.outbox
                        .send(conn, BrokerToBroker::FwdAck { seq: recv.seq }.encode());
                }
            }
        }
    }

    fn handle_disconnect(&mut self, conn: ConnId) {
        self.outbox.unregister(conn);
        self.forget_conn(conn);
    }

    /// Engine-side teardown shared by the immediate
    /// ([`handle_disconnect`](Self::handle_disconnect)) and flush-then-
    /// close (`protocol_error_disconnect`) paths: drops the routing state
    /// for `conn` without touching the transport.
    fn forget_conn(&mut self, conn: ConnId) {
        self.awaiting_hello.remove(&conn);
        self.last_heard.remove(&conn);
        match self.conns.remove(&conn) {
            Some(Peer::Client(client)) => {
                if let Some(state) = self.clients.get_mut(&client) {
                    if state.conn == Some(conn) {
                        // Keep the log: deliveries continue to accumulate
                        // for replay on reconnect (until the TTL).
                        state.conn = None;
                        state.disconnected_at = Some(std::time::Instant::now());
                    }
                }
            }
            Some(Peer::Broker(broker)) if self.neighbors.get(&broker) == Some(&conn) => {
                self.neighbors.remove(&broker);
            }
            _ => {}
        }
    }

    fn collect_garbage(&mut self) {
        let ttl = self.config.client_ttl;
        self.clients.retain(|_, state| {
            state.log.collect();
            state.log.enforce_bound(self.config.log_bound);
            // Reclaim state for clients gone longer than the TTL.
            state.disconnected_at.is_none_or(|at| at.elapsed() <= ttl)
        });
        // Flush pending forward acks, so a link that went quiet below the
        // ack cadence still lets the neighbor trim its spool.
        self.flush_forward_acks();
        // Trim acknowledged spool entries and enforce the per-link bound
        // for neighbors that stay down.
        for spool in self.spools.values_mut() {
            spool.collect();
            let before = spool.lost();
            spool.enforce_bound(self.config.link_spool_bound);
            let dropped = spool.lost() - before;
            self.stats
                .dropped_spool_overflow
                .fetch_add(dropped, Ordering::Relaxed);
        }
    }
}
