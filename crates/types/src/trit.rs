//! Three-valued link annotations ("trits") and trit vectors.
//!
//! Link matching annotates every node of the parallel search tree with a
//! vector of trits, one per outgoing link of the broker (§3.1 of the paper):
//!
//! - **Yes** — a search reaching this node is guaranteed to match a
//!   subscriber reachable through the link;
//! - **No** — no subsearch from this node leads to such a subscriber;
//! - **Maybe** — further searching is required to decide.
//!
//! Two operators propagate annotations bottom-up (paper Fig. 4):
//!
//! - [`Trit::alternative`] takes the *least specific* result (`Maybe`
//!   dominates), used across sibling value branches — an event follows at
//!   most one of them;
//! - [`Trit::parallel`] takes the *most liberal* result (`Yes` dominates
//!   `Maybe` dominates `No`), used to merge the value branches with the `*`
//!   branch — an event follows the `*` branch in parallel.
//!
//! [`TritVec`] stores trits packed two bits per element and implements the
//! operators word-parallel, since the engine applies them on every node
//! visit of every event.

use std::fmt;

/// A three-valued annotation: Yes, No, or Maybe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trit {
    /// Definitely no subscriber along this link.
    #[default]
    No,
    /// Not yet determined; continue searching.
    Maybe,
    /// Definitely a subscriber along this link.
    Yes,
}

impl Trit {
    const ENC_NO: u64 = 0b00;
    const ENC_MAYBE: u64 = 0b01;
    const ENC_YES: u64 = 0b10;

    /// *Alternative Combine* (paper Fig. 4, left): the least specific of the
    /// two — equal inputs pass through, differing inputs yield `Maybe`.
    ///
    /// ```
    /// use linkcast_types::Trit;
    /// assert_eq!(Trit::Yes.alternative(Trit::Yes), Trit::Yes);
    /// assert_eq!(Trit::Yes.alternative(Trit::No), Trit::Maybe);
    /// assert_eq!(Trit::No.alternative(Trit::No), Trit::No);
    /// ```
    #[must_use]
    pub fn alternative(self, other: Trit) -> Trit {
        if self == other {
            self
        } else {
            Trit::Maybe
        }
    }

    /// *Parallel Combine* (paper Fig. 4, right): the most liberal of the two
    /// — `Yes` dominates `Maybe` dominates `No`.
    ///
    /// ```
    /// use linkcast_types::Trit;
    /// assert_eq!(Trit::Yes.parallel(Trit::No), Trit::Yes);
    /// assert_eq!(Trit::Maybe.parallel(Trit::No), Trit::Maybe);
    /// assert_eq!(Trit::No.parallel(Trit::No), Trit::No);
    /// ```
    #[must_use]
    pub fn parallel(self, other: Trit) -> Trit {
        self.max_by_liberality(other)
    }

    fn max_by_liberality(self, other: Trit) -> Trit {
        if self.rank() >= other.rank() {
            self
        } else {
            other
        }
    }

    const fn rank(self) -> u8 {
        match self {
            Trit::No => 0,
            Trit::Maybe => 1,
            Trit::Yes => 2,
        }
    }

    const fn encode(self) -> u64 {
        match self {
            Trit::No => Self::ENC_NO,
            Trit::Maybe => Self::ENC_MAYBE,
            Trit::Yes => Self::ENC_YES,
        }
    }

    const fn decode(bits: u64) -> Trit {
        match bits & 0b11 {
            Self::ENC_MAYBE => Trit::Maybe,
            Self::ENC_YES => Trit::Yes,
            _ => Trit::No,
        }
    }

    /// Single-letter form used in the paper's figures (`Y`, `N`, `M`).
    pub const fn letter(self) -> char {
        match self {
            Trit::Yes => 'Y',
            Trit::No => 'N',
            Trit::Maybe => 'M',
        }
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

impl From<bool> for Trit {
    /// `true` maps to `Yes`, `false` to `No` (never `Maybe`).
    fn from(b: bool) -> Self {
        if b {
            Trit::Yes
        } else {
            Trit::No
        }
    }
}

const TRITS_PER_WORD: usize = 32;
/// `01` repeated — a `Maybe` in every lane / the low bit of every lane.
const LO: u64 = 0x5555_5555_5555_5555;
/// `10` repeated — a `Yes` in every lane / the high bit of every lane.
const HI: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// A fixed-length vector of [`Trit`]s, packed two bits per element.
///
/// One `TritVec` per search-tree node annotates all outgoing links of a
/// broker at once; the combine and refinement operators work word-parallel
/// across 32 links per `u64`.
///
/// # Example
///
/// The annotation computation of paper Fig. 5:
///
/// ```
/// use linkcast_types::{Trit, TritVec};
///
/// let left: TritVec = "MYY".parse().unwrap();
/// let right: TritVec = "NYN".parse().unwrap();
/// let star: TritVec = "YYN".parse().unwrap();
///
/// let alt = left.alternative(&right);
/// assert_eq!(alt.to_string(), "MYM");
/// let ann = alt.parallel(&star);
/// assert_eq!(ann.to_string(), "YYM");
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct TritVec {
    words: Vec<u64>,
    len: usize,
}

impl Clone for TritVec {
    fn clone(&self) -> Self {
        TritVec {
            words: self.words.clone(),
            len: self.len,
        }
    }

    /// Reuses the existing word buffer (the derived impl would allocate a
    /// fresh `Vec`); the match walk leans on this to copy masks into
    /// long-lived scratch slots.
    fn clone_from(&mut self, source: &Self) {
        self.words.clone_from(&source.words);
        self.len = source.len;
    }
}

impl TritVec {
    /// Creates a vector of `len` trits, all set to `fill`.
    pub fn filled(len: usize, fill: Trit) -> Self {
        let pattern = match fill {
            Trit::No => 0,
            Trit::Maybe => LO,
            Trit::Yes => HI,
        };
        let n_words = len.div_ceil(TRITS_PER_WORD);
        let mut v = TritVec {
            words: vec![pattern; n_words],
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates an all-`No` vector of `len` trits.
    pub fn no(len: usize) -> Self {
        Self::filled(len, Trit::No)
    }

    /// Creates an all-`Maybe` vector of `len` trits.
    pub fn maybe(len: usize) -> Self {
        Self::filled(len, Trit::Maybe)
    }

    /// Creates an all-`Yes` vector of `len` trits.
    pub fn yes(len: usize) -> Self {
        Self::filled(len, Trit::Yes)
    }

    /// Number of trits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has no trits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The trit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> Trit {
        assert!(
            index < self.len,
            "trit index {index} out of range {}",
            self.len
        );
        let word = self.words[index / TRITS_PER_WORD];
        Trit::decode(word >> (2 * (index % TRITS_PER_WORD)))
    }

    /// Sets the trit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set(&mut self, index: usize, trit: Trit) {
        assert!(
            index < self.len,
            "trit index {index} out of range {}",
            self.len
        );
        let shift = 2 * (index % TRITS_PER_WORD);
        let word = &mut self.words[index / TRITS_PER_WORD];
        *word = (*word & !(0b11 << shift)) | (trit.encode() << shift);
    }

    /// Element-wise *Alternative Combine* with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn alternative(&self, other: &TritVec) -> TritVec {
        self.check_len(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| {
                let d = a ^ b;
                // Per-lane equality: low bit set iff both bits of the lane agree.
                let eq = !(d | (d >> 1)) & LO;
                let keep = eq | (eq << 1);
                (a & keep) | (LO & !keep)
            })
            .collect();
        let mut out = TritVec {
            words,
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Element-wise *Parallel Combine* with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn parallel(&self, other: &TritVec) -> TritVec {
        self.check_len(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| {
                let or = a | b;
                let y = or & HI;
                // A lane with a Yes keeps only its high bit; otherwise any
                // Maybe survives.
                y | (or & LO & !(y >> 1))
            })
            .collect();
        TritVec {
            words,
            len: self.len,
        }
    }

    /// Refinement step of the matching search (§3.3, step 2): every `Maybe`
    /// in `self` is replaced by the corresponding trit of `annotation`;
    /// `Yes` and `No` entries are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn refine(&self, annotation: &TritVec) -> TritVec {
        self.check_len(annotation);
        let words = self
            .words
            .iter()
            .zip(&annotation.words)
            .map(|(&a, &b)| {
                let m = (a & LO) & !((a >> 1) & LO); // lanes that are Maybe
                let sel = m | (m << 1);
                (a & !sel) | (b & sel)
            })
            .collect();
        TritVec {
            words,
            len: self.len,
        }
    }

    /// Subsearch merge (§3.3, step 3): every `Maybe` in `self` whose
    /// corresponding trit in `subresult` is `Yes` becomes `Yes`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn absorb_yes(&self, subresult: &TritVec) -> TritVec {
        self.check_len(subresult);
        let words = self
            .words
            .iter()
            .zip(&subresult.words)
            .map(|(&a, &b)| {
                let m = (a & LO) & !((a >> 1) & LO); // Maybe lanes of a
                let y = (b >> 1) & LO; // Yes lanes of b (low-bit form)
                let sel = m & y;
                let sel2 = sel | (sel << 1);
                (a & !sel2) | (sel << 1)
            })
            .collect();
        TritVec {
            words,
            len: self.len,
        }
    }

    /// Search-termination step (§3.3, end of step 3): every remaining
    /// `Maybe` becomes `No`.
    #[must_use]
    pub fn maybes_to_no(&self) -> TritVec {
        let words = self
            .words
            .iter()
            .map(|&a| {
                let m = (a & LO) & !((a >> 1) & LO);
                a & !(m | (m << 1))
            })
            .collect();
        TritVec {
            words,
            len: self.len,
        }
    }

    /// The packed backing words (two bits per trit, 32 trits per word, tail
    /// lanes canonical zero). Exposed so the flattened match arena can store
    /// annotations in a contiguous word slab and refine against slab slices
    /// without materializing `TritVec`s.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place [`refine`](Self::refine) against a raw annotation word
    /// slice (same packing as [`words`](Self::words)).
    ///
    /// # Panics
    ///
    /// Panics if `annotation` has a different word count.
    pub fn refine_in_place(&mut self, annotation: &[u64]) {
        assert_eq!(
            self.words.len(),
            annotation.len(),
            "trit vector word-count mismatch: {} vs {}",
            self.words.len(),
            annotation.len()
        );
        for (a, &b) in self.words.iter_mut().zip(annotation) {
            let m = (*a & LO) & !((*a >> 1) & LO);
            let sel = m | (m << 1);
            *a = (*a & !sel) | (b & sel);
        }
    }

    /// In-place [`absorb_yes`](Self::absorb_yes).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn absorb_yes_in_place(&mut self, subresult: &TritVec) {
        self.check_len(subresult);
        for (a, &b) in self.words.iter_mut().zip(&subresult.words) {
            let m = (*a & LO) & !((*a >> 1) & LO);
            let y = (b >> 1) & LO;
            let sel = m & y;
            let sel2 = sel | (sel << 1);
            *a = (*a & !sel2) | (sel << 1);
        }
    }

    /// In-place [`maybes_to_no`](Self::maybes_to_no).
    pub fn maybes_to_no_in_place(&mut self) {
        for a in &mut self.words {
            let m = (*a & LO) & !((*a >> 1) & LO);
            *a &= !(m | (m << 1));
        }
    }

    /// In-place [`parallel`](Self::parallel).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn parallel_in_place(&mut self, other: &TritVec) {
        self.check_len(other);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let or = *a | b;
            let y = or & HI;
            *a = y | (or & LO & !(y >> 1));
        }
    }

    /// Resets every trit to `No` in place, keeping the allocation. `No`
    /// encodes as `00` and the tail lanes stay canonical zero, so this is a
    /// word fill.
    pub fn fill_no(&mut self) {
        self.words.fill(0);
    }

    /// Whether any trit is `Maybe` — i.e. the mask is not yet fully refined.
    pub fn has_maybe(&self) -> bool {
        self.words.iter().any(|&a| (a & LO) & !((a >> 1) & LO) != 0)
    }

    /// Whether every trit is `No`. `No` encodes as `00` and the tail lanes
    /// are kept canonical, so this is a zero test over the backing words.
    pub fn is_all_no(&self) -> bool {
        self.words.iter().all(|&a| a == 0)
    }

    /// Whether any trit is `Yes`.
    pub fn has_yes(&self) -> bool {
        self.words.iter().any(|&a| a & HI != 0)
    }

    /// Number of `Yes` trits.
    pub fn count_yes(&self) -> usize {
        self.words
            .iter()
            .map(|&a| (a & HI).count_ones() as usize)
            .sum()
    }

    /// Number of `Maybe` trits.
    pub fn count_maybe(&self) -> usize {
        self.words
            .iter()
            .map(|&a| ((a & LO) & !((a >> 1) & LO)).count_ones() as usize)
            .sum()
    }

    /// Iterates over the indices whose trit is `Yes`, scanning a word (32
    /// lanes) at a time and popping set bits — sparse vectors cost one
    /// `trailing_zeros` per hit instead of one decode per lane.
    pub fn yes_indices(&self) -> impl Iterator<Item = usize> + '_ {
        lane_indices(self.words.iter().map(|&a| a & HI))
    }

    /// Iterates over the indices whose trit is `Maybe` (word-at-a-time,
    /// like [`yes_indices`](Self::yes_indices)).
    pub fn maybe_indices(&self) -> impl Iterator<Item = usize> + '_ {
        lane_indices(self.words.iter().map(|&a| (a & LO) & !((a >> 1) & LO)))
    }

    /// Iterates over all trits in order.
    pub fn iter(&self) -> impl Iterator<Item = Trit> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    fn check_len(&self, other: &TritVec) {
        assert_eq!(
            self.len, other.len,
            "trit vector length mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// Clears the unused tail lanes of the last word so that `Eq`/`Hash`
    /// see a canonical representation.
    fn mask_tail(&mut self) {
        let used = self.len % TRITS_PER_WORD;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (2 * used)) - 1;
            }
        }
    }
}

/// Expands per-word lane bitmasks (one marker bit per selected 2-bit lane,
/// in either bit of the lane) into ascending trit indices.
fn lane_indices(words: impl Iterator<Item = u64>) -> impl Iterator<Item = usize> {
    words.enumerate().flat_map(|(word_idx, mut bits)| {
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let bit = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(word_idx * TRITS_PER_WORD + bit / 2)
        })
    })
}

impl fmt::Display for TritVec {
    /// Renders in the paper's figure notation, e.g. `YYM`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.iter() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for TritVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TritVec(\"{self}\")")
    }
}

impl FromIterator<Trit> for TritVec {
    fn from_iter<I: IntoIterator<Item = Trit>>(iter: I) -> Self {
        let trits: Vec<Trit> = iter.into_iter().collect();
        let mut v = TritVec::no(trits.len());
        for (i, t) in trits.into_iter().enumerate() {
            v.set(i, t);
        }
        v
    }
}

impl std::str::FromStr for TritVec {
    type Err = crate::Error;

    /// Parses the paper's figure notation: a string of `Y`, `N`, `M`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .map(|c| match c {
                'Y' | 'y' => Ok(Trit::Yes),
                'N' | 'n' => Ok(Trit::No),
                'M' | 'm' => Ok(Trit::Maybe),
                other => Err(crate::Error::Decode(format!(
                    "invalid trit character `{other}`"
                ))),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Trit; 3] = [Trit::No, Trit::Maybe, Trit::Yes];

    #[test]
    fn alternative_table_matches_figure_4() {
        use Trit::{Maybe as M, No as N, Yes as Y};
        assert_eq!(Y.alternative(Y), Y);
        assert_eq!(Y.alternative(M), M);
        assert_eq!(Y.alternative(N), M);
        assert_eq!(M.alternative(Y), M);
        assert_eq!(M.alternative(M), M);
        assert_eq!(M.alternative(N), M);
        assert_eq!(N.alternative(Y), M);
        assert_eq!(N.alternative(M), M);
        assert_eq!(N.alternative(N), N);
    }

    #[test]
    fn parallel_table_matches_figure_4() {
        use Trit::{Maybe as M, No as N, Yes as Y};
        assert_eq!(Y.parallel(Y), Y);
        assert_eq!(Y.parallel(M), Y);
        assert_eq!(Y.parallel(N), Y);
        assert_eq!(M.parallel(Y), Y);
        assert_eq!(M.parallel(M), M);
        assert_eq!(M.parallel(N), M);
        assert_eq!(N.parallel(Y), Y);
        assert_eq!(N.parallel(M), M);
        assert_eq!(N.parallel(N), N);
    }

    #[test]
    fn operators_are_commutative_and_associative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.alternative(b), b.alternative(a));
                assert_eq!(a.parallel(b), b.parallel(a));
                for c in ALL {
                    assert_eq!(
                        a.alternative(b).alternative(c),
                        a.alternative(b.alternative(c))
                    );
                    assert_eq!(a.parallel(b).parallel(c), a.parallel(b.parallel(c)));
                }
            }
        }
    }

    #[test]
    fn figure_5_example() {
        let left: TritVec = "MYY".parse().unwrap();
        let right: TritVec = "NYN".parse().unwrap();
        let star: TritVec = "YYN".parse().unwrap();
        let alt = left.alternative(&right);
        assert_eq!(alt.to_string(), "MYM");
        assert_eq!(alt.parallel(&star).to_string(), "YYM");
    }

    #[test]
    fn filled_constructors() {
        assert_eq!(TritVec::no(4).to_string(), "NNNN");
        assert_eq!(TritVec::maybe(4).to_string(), "MMMM");
        assert_eq!(TritVec::yes(4).to_string(), "YYYY");
        assert!(TritVec::no(0).is_empty());
    }

    #[test]
    fn get_set_roundtrip_across_word_boundary() {
        let mut v = TritVec::no(70);
        v.set(0, Trit::Yes);
        v.set(31, Trit::Maybe);
        v.set(32, Trit::Yes);
        v.set(69, Trit::Maybe);
        assert_eq!(v.get(0), Trit::Yes);
        assert_eq!(v.get(31), Trit::Maybe);
        assert_eq!(v.get(32), Trit::Yes);
        assert_eq!(v.get(69), Trit::Maybe);
        assert_eq!(v.get(1), Trit::No);
        assert_eq!(v.count_yes(), 2);
        assert_eq!(v.count_maybe(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = TritVec::no(3).get(3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = TritVec::no(3).parallel(&TritVec::no(4));
    }

    #[test]
    fn vector_ops_agree_with_scalar_ops() {
        // Exhaustive over all 9 lane combinations, replicated across a
        // word boundary.
        let len = 67;
        for (i, a0) in ALL.iter().enumerate() {
            for (j, b0) in ALL.iter().enumerate() {
                let mut a = TritVec::filled(len, *a0);
                let mut b = TritVec::filled(len, *b0);
                // Perturb one lane to a different pair to catch cross-lane leaks.
                a.set(33, ALL[(i + 1) % 3]);
                b.set(33, ALL[(j + 2) % 3]);
                let alt = a.alternative(&b);
                let par = a.parallel(&b);
                let refi = a.refine(&b);
                let abs = a.absorb_yes(&b);
                for k in 0..len {
                    let (x, y) = (a.get(k), b.get(k));
                    assert_eq!(alt.get(k), x.alternative(y), "alt lane {k}");
                    assert_eq!(par.get(k), x.parallel(y), "par lane {k}");
                    let expect_ref = if x == Trit::Maybe { y } else { x };
                    assert_eq!(refi.get(k), expect_ref, "refine lane {k}");
                    let expect_abs = if x == Trit::Maybe && y == Trit::Yes {
                        Trit::Yes
                    } else {
                        x
                    };
                    assert_eq!(abs.get(k), expect_abs, "absorb lane {k}");
                }
            }
        }
    }

    #[test]
    fn maybes_to_no() {
        let v: TritVec = "YMNMY".parse().unwrap();
        assert_eq!(v.maybes_to_no().to_string(), "YNNNY");
        assert!(!v.maybes_to_no().has_maybe());
    }

    #[test]
    fn in_place_ops_agree_with_allocating_ops() {
        // Exhaustive lane pairs across a word boundary, same shape as
        // `vector_ops_agree_with_scalar_ops`.
        let len = 67;
        for (i, a0) in ALL.iter().enumerate() {
            for (j, b0) in ALL.iter().enumerate() {
                let mut a = TritVec::filled(len, *a0);
                let mut b = TritVec::filled(len, *b0);
                a.set(33, ALL[(i + 1) % 3]);
                b.set(33, ALL[(j + 2) % 3]);

                let mut refi = a.clone();
                refi.refine_in_place(b.words());
                assert_eq!(refi, a.refine(&b));

                let mut abs = a.clone();
                abs.absorb_yes_in_place(&b);
                assert_eq!(abs, a.absorb_yes(&b));

                let mut mtn = a.clone();
                mtn.maybes_to_no_in_place();
                assert_eq!(mtn, a.maybes_to_no());

                let mut par = a.clone();
                par.parallel_in_place(&b);
                assert_eq!(par, a.parallel(&b));

                let mut fill = a.clone();
                fill.fill_no();
                assert_eq!(fill, TritVec::no(len));
            }
        }
    }

    #[test]
    fn clone_from_reuses_capacity_and_copies_content() {
        let src: TritVec = "YMNMYNM".parse().unwrap();
        let mut dst = TritVec::yes(200); // larger capacity than src needs
        dst.clone_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.len(), 7);
        assert_eq!(dst.to_string(), "YMNMYNM");
        // And growing again works too.
        let big = TritVec::maybe(100);
        dst.clone_from(&big);
        assert_eq!(dst, big);
    }

    #[test]
    #[should_panic(expected = "word-count mismatch")]
    fn refine_in_place_rejects_mismatched_words() {
        let mut a = TritVec::no(33);
        a.refine_in_place(TritVec::no(32).words());
    }

    #[test]
    fn refinement_examples_from_section_3_3() {
        // An M in the mask is replaced by the annotation's trit; Y and N
        // are untouched.
        let mask: TritVec = "MYN".parse().unwrap();
        let ann: TritVec = "YNM".parse().unwrap();
        assert_eq!(mask.refine(&ann).to_string(), "YYN");
    }

    #[test]
    fn queries() {
        let v: TritVec = "NMY".parse().unwrap();
        assert!(v.has_maybe());
        assert!(v.has_yes());
        assert_eq!(v.count_yes(), 1);
        assert_eq!(v.count_maybe(), 1);
        assert_eq!(v.yes_indices().collect::<Vec<_>>(), vec![2]);
        assert_eq!(v.maybe_indices().collect::<Vec<_>>(), vec![1]);
        assert!(!TritVec::no(5).has_maybe());
        assert!(!TritVec::no(5).has_yes());
        assert!(TritVec::no(5).is_all_no());
        assert!(!v.is_all_no());
        assert!(TritVec::no(0).is_all_no());
    }

    #[test]
    fn index_iterators_agree_with_scalar_scan_across_word_boundaries() {
        // 97 trits spans three words with a partial tail; a pseudo-random
        // pattern hits lanes in every word.
        let mut v = TritVec::no(97);
        for i in 0..97 {
            match i % 7 {
                0 | 3 => v.set(i, Trit::Yes),
                1 | 5 => v.set(i, Trit::Maybe),
                _ => {}
            }
        }
        let scalar_yes: Vec<usize> = (0..97).filter(|&i| v.get(i) == Trit::Yes).collect();
        let scalar_maybe: Vec<usize> = (0..97).filter(|&i| v.get(i) == Trit::Maybe).collect();
        assert_eq!(v.yes_indices().collect::<Vec<_>>(), scalar_yes);
        assert_eq!(v.maybe_indices().collect::<Vec<_>>(), scalar_maybe);
        assert_eq!(v.yes_indices().count(), v.count_yes());
        assert_eq!(v.maybe_indices().count(), v.count_maybe());
        // All-Yes exercises the dense path, including the 97th lane.
        let full = TritVec::yes(97);
        assert_eq!(
            full.yes_indices().collect::<Vec<_>>(),
            (0..97).collect::<Vec<_>>()
        );
        assert!(!full.is_all_no());
    }

    #[test]
    fn canonical_equality_after_tail_writes() {
        // Two vectors with identical logical content must be equal and hash
        // the same, regardless of construction path.
        let mut a = TritVec::maybe(33);
        for i in 0..33 {
            a.set(i, Trit::Yes);
        }
        let b = TritVec::yes(33);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("YXZ".parse::<TritVec>().is_err());
        assert_eq!("".parse::<TritVec>().unwrap().len(), 0);
    }

    #[test]
    fn from_bool() {
        assert_eq!(Trit::from(true), Trit::Yes);
        assert_eq!(Trit::from(false), Trit::No);
    }

    #[test]
    fn debug_form_is_nonempty() {
        assert_eq!(format!("{:?}", TritVec::no(2)), "TritVec(\"NN\")");
        assert_eq!(format!("{:?}", Trit::Maybe), "Maybe");
    }

    #[test]
    fn from_iterator_collects() {
        let v: TritVec = [Trit::Yes, Trit::No, Trit::Maybe].into_iter().collect();
        assert_eq!(v.to_string(), "YNM");
        assert_eq!(
            v.iter().collect::<Vec<_>>(),
            vec![Trit::Yes, Trit::No, Trit::Maybe]
        );
    }
}
