//! Event schemas (information spaces) and the schema registry.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{Error, Result, SchemaId, Value, ValueKind};

/// A named, typed attribute of an event schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    name: Arc<str>,
    kind: ValueKind,
    domain: Option<Arc<[Value]>>,
}

impl AttributeDef {
    /// Creates an attribute with an unbounded domain.
    pub fn new(name: impl Into<Arc<str>>, kind: ValueKind) -> Self {
        Self {
            name: name.into(),
            kind,
            domain: None,
        }
    }

    /// Creates an attribute with a finite, enumerated domain.
    ///
    /// Declaring a finite domain lets the link-matching annotator prove
    /// stronger facts: when the value branches of a search-tree node exhaust
    /// the domain, no implicit "unlisted value" alternative is needed and
    /// annotations stay `Yes` instead of degrading to `Maybe`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SchemaMismatch`] if any domain value is not of
    /// `kind`, and [`Error::InvalidSchema`] if the domain is empty or
    /// contains duplicates.
    pub fn with_domain(
        name: impl Into<Arc<str>>,
        kind: ValueKind,
        domain: impl IntoIterator<Item = Value>,
    ) -> Result<Self> {
        let name = name.into();
        let domain: Vec<Value> = domain.into_iter().collect();
        if domain.is_empty() {
            return Err(Error::InvalidSchema(format!(
                "attribute `{name}` declared with an empty domain"
            )));
        }
        for v in &domain {
            if v.kind() != kind {
                return Err(Error::SchemaMismatch {
                    attribute: name.to_string(),
                    expected: kind,
                    actual: v.kind(),
                });
            }
        }
        let mut sorted = domain.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != domain.len() {
            return Err(Error::InvalidSchema(format!(
                "attribute `{name}` declared with duplicate domain values"
            )));
        }
        Ok(Self {
            name,
            kind,
            domain: Some(domain.into()),
        })
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's declared kind.
    pub fn kind(&self) -> ValueKind {
        self.kind
    }

    /// The enumerated domain, if one was declared.
    pub fn domain(&self) -> Option<&[Value]> {
        self.domain.as_deref()
    }
}

impl fmt::Display for AttributeDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.kind)
    }
}

/// The schema of an information space: an ordered tuple of named, typed
/// attributes.
///
/// The paper's running example is the single information space
/// `[issue: string, price: dollar, volume: integer]`.
///
/// # Example
///
/// ```
/// use linkcast_types::{EventSchema, ValueKind};
///
/// # fn main() -> Result<(), linkcast_types::Error> {
/// let schema = EventSchema::builder("trades")
///     .attribute("issue", ValueKind::Str)
///     .attribute("price", ValueKind::Dollar)
///     .attribute("volume", ValueKind::Int)
///     .build()?;
/// assert_eq!(schema.arity(), 3);
/// assert_eq!(schema.attribute(1).unwrap().name(), "price");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSchema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, PartialEq, Eq)]
struct SchemaInner {
    id: SchemaId,
    name: Arc<str>,
    attributes: Vec<AttributeDef>,
    by_name: HashMap<Arc<str>, usize>,
}

impl EventSchema {
    /// Starts building a schema with the given information-space name.
    pub fn builder(name: impl Into<Arc<str>>) -> EventSchemaBuilder {
        EventSchemaBuilder {
            id: SchemaId::new(0),
            name: name.into(),
            attributes: Vec::new(),
            error: None,
        }
    }

    /// The schema id. Schemas built directly get id 0; a [`SchemaRegistry`]
    /// assigns unique ids.
    pub fn id(&self) -> SchemaId {
        self.inner.id
    }

    /// The information-space name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of attributes in the schema.
    pub fn arity(&self) -> usize {
        self.inner.attributes.len()
    }

    /// The attributes, in declaration order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.inner.attributes
    }

    /// The attribute at position `index`, if in range.
    pub fn attribute(&self, index: usize) -> Option<&AttributeDef> {
        self.inner.attributes.get(index)
    }

    /// Looks up an attribute position by name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.inner.by_name.get(name).copied()
    }

    /// Returns a copy of this schema with a different id (used by
    /// [`SchemaRegistry`]).
    fn with_id(&self, id: SchemaId) -> Self {
        let inner = &*self.inner;
        EventSchema {
            inner: Arc::new(SchemaInner {
                id,
                name: inner.name.clone(),
                attributes: inner.attributes.clone(),
                by_name: inner.by_name.clone(),
            }),
        }
    }

    /// Validates that `index` holds a value of the declared kind.
    ///
    /// # Errors
    ///
    /// [`Error::AttributeOutOfRange`] if `index >= arity()`;
    /// [`Error::SchemaMismatch`] if the value has the wrong kind.
    pub fn check_value(&self, index: usize, value: &Value) -> Result<()> {
        let attr = self.attribute(index).ok_or(Error::AttributeOutOfRange {
            index,
            arity: self.arity(),
        })?;
        if attr.kind() != value.kind() {
            return Err(Error::SchemaMismatch {
                attribute: attr.name().to_string(),
                expected: attr.kind(),
                actual: value.kind(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for EventSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.name())?;
        for (i, a) in self.attributes().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

/// Incrementally builds an [`EventSchema`].
#[derive(Debug)]
pub struct EventSchemaBuilder {
    id: SchemaId,
    name: Arc<str>,
    attributes: Vec<AttributeDef>,
    error: Option<Error>,
}

impl EventSchemaBuilder {
    /// Appends an attribute with an unbounded domain.
    pub fn attribute(mut self, name: impl Into<Arc<str>>, kind: ValueKind) -> Self {
        self.attributes.push(AttributeDef::new(name, kind));
        self
    }

    /// Appends an attribute with a finite, enumerated domain.
    pub fn attribute_with_domain(
        mut self,
        name: impl Into<Arc<str>>,
        kind: ValueKind,
        domain: impl IntoIterator<Item = Value>,
    ) -> Self {
        match AttributeDef::with_domain(name, kind, domain) {
            Ok(def) => self.attributes.push(def),
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Appends a pre-built attribute definition.
    pub fn attribute_def(mut self, def: AttributeDef) -> Self {
        self.attributes.push(def);
        self
    }

    /// Finalizes the schema.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSchema`] if the schema has no attributes or duplicate
    /// attribute names, or if any `attribute_with_domain` call failed.
    pub fn build(self) -> Result<EventSchema> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.attributes.is_empty() {
            return Err(Error::InvalidSchema(format!(
                "schema `{}` has no attributes",
                self.name
            )));
        }
        let mut by_name = HashMap::with_capacity(self.attributes.len());
        for (i, attr) in self.attributes.iter().enumerate() {
            if by_name.insert(attr.name.clone(), i).is_some() {
                return Err(Error::InvalidSchema(format!(
                    "schema `{}` declares attribute `{}` twice",
                    self.name,
                    attr.name()
                )));
            }
        }
        Ok(EventSchema {
            inner: Arc::new(SchemaInner {
                id: self.id,
                name: self.name,
                attributes: self.attributes,
                by_name,
            }),
        })
    }
}

/// A registry of information spaces, mapping schema names and ids to
/// [`EventSchema`]s.
///
/// A broker network "may implement multiple information spaces by specifying
/// an event schema (one per information space)" (§4.2); the registry is the
/// shared catalog each broker consults when parsing events and
/// subscriptions.
#[derive(Debug, Default)]
pub struct SchemaRegistry {
    schemas: Vec<EventSchema>,
    by_name: HashMap<Arc<str>, SchemaId>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a schema, assigning it a fresh id.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSchema`] if a schema with the same name is already
    /// registered.
    pub fn register(&mut self, schema: EventSchema) -> Result<SchemaId> {
        let name: Arc<str> = schema.name().into();
        if self.by_name.contains_key(&name) {
            return Err(Error::InvalidSchema(format!(
                "information space `{name}` already registered"
            )));
        }
        let id = SchemaId::new(self.schemas.len() as u32);
        self.schemas.push(schema.with_id(id));
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Looks up a schema by id.
    pub fn get(&self, id: SchemaId) -> Option<&EventSchema> {
        self.schemas.get(id.index())
    }

    /// Looks up a schema by information-space name.
    pub fn get_by_name(&self, name: &str) -> Option<&EventSchema> {
        self.by_name.get(name).and_then(|id| self.get(*id))
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterates over all registered schemas.
    pub fn iter(&self) -> impl Iterator<Item = &EventSchema> {
        self.schemas.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trades() -> EventSchema {
        EventSchema::builder("trades")
            .attribute("issue", ValueKind::Str)
            .attribute("price", ValueKind::Dollar)
            .attribute("volume", ValueKind::Int)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_indexes_attributes() {
        let s = trades();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attribute_index("price"), Some(1));
        assert_eq!(s.attribute_index("nope"), None);
        assert_eq!(s.attribute(2).unwrap().kind(), ValueKind::Int);
        assert_eq!(s.attribute(3), None);
    }

    #[test]
    fn display_lists_attributes() {
        assert_eq!(
            trades().to_string(),
            "trades [issue: string, price: dollar, volume: integer]"
        );
    }

    #[test]
    fn rejects_empty_schema() {
        let err = EventSchema::builder("empty").build().unwrap_err();
        assert!(matches!(err, Error::InvalidSchema(_)));
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = EventSchema::builder("dup")
            .attribute("a", ValueKind::Int)
            .attribute("a", ValueKind::Str)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidSchema(_)));
    }

    #[test]
    fn check_value_enforces_kinds() {
        let s = trades();
        assert!(s.check_value(0, &Value::str("IBM")).is_ok());
        assert!(matches!(
            s.check_value(0, &Value::Int(5)),
            Err(Error::SchemaMismatch { .. })
        ));
        assert!(matches!(
            s.check_value(9, &Value::Int(5)),
            Err(Error::AttributeOutOfRange { .. })
        ));
    }

    #[test]
    fn domains_are_validated() {
        let ok = AttributeDef::with_domain("a", ValueKind::Int, (0..5).map(Value::Int));
        assert_eq!(ok.unwrap().domain().unwrap().len(), 5);

        let wrong_kind = AttributeDef::with_domain("a", ValueKind::Int, [Value::str("x")]);
        assert!(matches!(wrong_kind, Err(Error::SchemaMismatch { .. })));

        let empty = AttributeDef::with_domain("a", ValueKind::Int, []);
        assert!(matches!(empty, Err(Error::InvalidSchema(_))));

        let dup = AttributeDef::with_domain("a", ValueKind::Int, [Value::Int(1), Value::Int(1)]);
        assert!(matches!(dup, Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn builder_with_bad_domain_fails_at_build() {
        let err = EventSchema::builder("s")
            .attribute_with_domain("a", ValueKind::Int, [])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidSchema(_)));
    }

    #[test]
    fn registry_assigns_ids_and_rejects_duplicates() {
        let mut reg = SchemaRegistry::new();
        assert!(reg.is_empty());
        let id = reg.register(trades()).unwrap();
        assert_eq!(id, SchemaId::new(0));
        assert_eq!(reg.get(id).unwrap().id(), id);
        assert_eq!(reg.get_by_name("trades").unwrap().id(), id);
        assert_eq!(reg.len(), 1);
        assert!(reg.register(trades()).is_err());

        let other = EventSchema::builder("quotes")
            .attribute("bid", ValueKind::Dollar)
            .build()
            .unwrap();
        let id2 = reg.register(other).unwrap();
        assert_eq!(id2, SchemaId::new(1));
        assert_eq!(reg.iter().count(), 2);
    }
}
