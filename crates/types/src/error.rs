//! Error types shared across the workspace's data model.

use std::fmt;

use crate::ValueKind;

/// Convenience alias for results produced by this crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors arising from schema, event, predicate, and codec operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A schema was structurally invalid (empty, duplicate attributes, ...).
    InvalidSchema(String),
    /// A value's kind did not match the attribute's declared kind.
    SchemaMismatch {
        /// Name of the offending attribute.
        attribute: String,
        /// Kind declared by the schema.
        expected: ValueKind,
        /// Kind actually supplied.
        actual: ValueKind,
    },
    /// An attribute index was out of range for the schema.
    AttributeOutOfRange {
        /// The requested index.
        index: usize,
        /// The schema arity.
        arity: usize,
    },
    /// An attribute name was not declared by the schema.
    UnknownAttribute(String),
    /// An event was built without assigning every attribute.
    MissingAttribute(String),
    /// A subscription predicate failed to parse.
    ParsePredicate(crate::ParsePredicateError),
    /// A wire frame failed to decode.
    Decode(String),
    /// A predicate used an operator unsupported for the attribute's kind
    /// (e.g. `<` on booleans).
    UnsupportedOperator {
        /// The operator symbol.
        operator: &'static str,
        /// The value kind it was applied to.
        kind: ValueKind,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            Error::SchemaMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "attribute `{attribute}` expects {expected}, got {actual}"
            ),
            Error::AttributeOutOfRange { index, arity } => {
                write!(f, "attribute index {index} out of range for arity {arity}")
            }
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::MissingAttribute(name) => {
                write!(f, "event is missing a value for attribute `{name}`")
            }
            Error::ParsePredicate(e) => write!(f, "{e}"),
            Error::Decode(msg) => write!(f, "decode error: {msg}"),
            Error::UnsupportedOperator { operator, kind } => {
                write!(f, "operator `{operator}` is not supported on {kind} values")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::ParsePredicate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::ParsePredicateError> for Error {
    fn from(e: crate::ParsePredicateError) -> Self {
        Error::ParsePredicate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::SchemaMismatch {
            attribute: "price".into(),
            expected: ValueKind::Dollar,
            actual: ValueKind::Int,
        };
        assert_eq!(
            e.to_string(),
            "attribute `price` expects dollar, got integer"
        );

        let e = Error::AttributeOutOfRange { index: 4, arity: 3 };
        assert_eq!(e.to_string(), "attribute index 4 out of range for arity 3");

        let e = Error::UnsupportedOperator {
            operator: "<",
            kind: ValueKind::Bool,
        };
        assert_eq!(
            e.to_string(),
            "operator `<` is not supported on boolean values"
        );
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn parse_error_is_source() {
        let pe = crate::ParsePredicateError::new(3, "boom");
        let e = Error::from(pe);
        assert!(e.source().is_some());
    }
}
