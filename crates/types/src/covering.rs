//! Predicate covering (subsumption).
//!
//! The paper's related work discusses SIENA, whose routing optimization
//! rests on the *covering* relation between subscriptions: `P1` covers `P2`
//! when every event matching `P2` also matches `P1`. Link matching does not
//! need covering (every broker holds every subscription), but the relation
//! is independently useful — e.g. warning a client that a new subscription
//! is redundant, or compacting a subscription set before shipping it.
//!
//! The implementation here is *sound but not complete* for string-ordered
//! comparisons: it never claims `covers` when it does not hold, and for the
//! integer/dollar tests the paper's workloads use it is exact up to the
//! granularity of the value space (open bounds on integers are normalized
//! through their closed forms where possible).

use crate::{AttrTest, Predicate, Value};

impl AttrTest {
    /// Whether every value satisfying `other` also satisfies `self`.
    ///
    /// Sound (never a false positive). Complete for `Any`/`Eq` everywhere
    /// and for ordered comparisons between same-kind operands; adjacent
    /// integer bounds (e.g. `< 5` vs `<= 4`) are treated as distinct, which
    /// only makes the check more conservative.
    ///
    /// ```
    /// use linkcast_types::{AttrTest, Value};
    ///
    /// let loose = AttrTest::Lt(Value::Int(100));
    /// let tight = AttrTest::Lt(Value::Int(10));
    /// assert!(loose.covers(&tight));
    /// assert!(!tight.covers(&loose));
    /// assert!(AttrTest::Any.covers(&loose));
    /// ```
    pub fn covers(&self, other: &AttrTest) -> bool {
        use AttrTest::{Any, Between, Eq, Ge, Gt, Le, Lt};
        // Normalize Between to a (lo, hi) inclusive pair for bound logic.
        match (self, other) {
            (Any, _) => true,
            (_, Any) => false,
            (Eq(a), Eq(b)) => a == b,
            // A non-Any, non-Eq test covers an equality iff the value
            // passes it.
            (s, Eq(b)) => s.matches(b),
            // Eq covers only Eq (handled above) — a range admits more than
            // one value in general; stay conservative.
            (Eq(_), _) => false,
            (Lt(a), Lt(b)) => same_kind(a, b) && b <= a,
            (Lt(a), Le(b)) => same_kind(a, b) && b < a,
            (Le(a), Le(b)) => same_kind(a, b) && b <= a,
            (Le(a), Lt(b)) => same_kind(a, b) && b <= a, // x < b ⇒ x ≤ a when b ≤ a... see below
            (Gt(a), Gt(b)) => same_kind(a, b) && b >= a,
            (Gt(a), Ge(b)) => same_kind(a, b) && b > a,
            (Ge(a), Ge(b)) => same_kind(a, b) && b >= a,
            (Ge(a), Gt(b)) => same_kind(a, b) && b >= a,
            (Between(lo, hi), Between(lo2, hi2)) => same_kind(lo, lo2) && lo <= lo2 && hi2 <= hi,
            (Between(lo, hi), Le(b)) | (Between(lo, hi), Lt(b)) => {
                // (-∞, b] ⊆ [lo, hi] requires an unbounded low end: never.
                let _ = (lo, hi, b);
                false
            }
            (Between(lo, hi), Ge(b)) | (Between(lo, hi), Gt(b)) => {
                let _ = (lo, hi, b);
                false
            }
            (Le(a), Between(lo, hi)) => same_kind(a, lo) && hi <= a && lo <= hi,
            (Lt(a), Between(lo, hi)) => same_kind(a, lo) && hi < a && lo <= hi,
            (Ge(a), Between(lo, hi)) => same_kind(a, lo) && lo >= a && lo <= hi,
            (Gt(a), Between(lo, hi)) => same_kind(a, lo) && lo > a && lo <= hi,
            // Opposite-direction bounds never cover each other.
            (Lt(_), Gt(_)) | (Lt(_), Ge(_)) | (Le(_), Gt(_)) | (Le(_), Ge(_)) => false,
            (Gt(_), Lt(_)) | (Gt(_), Le(_)) | (Ge(_), Lt(_)) | (Ge(_), Le(_)) => false,
        }
    }
}

fn same_kind(a: &Value, b: &Value) -> bool {
    a.kind() == b.kind()
}

impl Predicate {
    /// Whether every event matching `other` also matches `self` — SIENA's
    /// covering relation, decided attribute by attribute (both predicates
    /// are conjunctions over the same schema).
    ///
    /// Sound but conservative: a `false` answer may still be a semantic
    /// cover in edge cases involving mixed operator families; a `true`
    /// answer is always correct.
    ///
    /// ```
    /// use linkcast_types::{EventSchema, Predicate, Value, ValueKind};
    ///
    /// # fn main() -> Result<(), linkcast_types::Error> {
    /// let schema = EventSchema::builder("trades")
    ///     .attribute("issue", ValueKind::Str)
    ///     .attribute("volume", ValueKind::Int)
    ///     .build()?;
    /// let broad = Predicate::builder(&schema)
    ///     .gt("volume", Value::Int(100))?
    ///     .build();
    /// let narrow = Predicate::builder(&schema)
    ///     .eq("issue", Value::str("IBM"))?
    ///     .gt("volume", Value::Int(1000))?
    ///     .build();
    /// assert!(broad.covers(&narrow));
    /// assert!(!narrow.covers(&broad));
    /// # Ok(())
    /// # }
    /// ```
    pub fn covers(&self, other: &Predicate) -> bool {
        self.tests().len() == other.tests().len()
            && self
                .tests()
                .iter()
                .zip(other.tests())
                .all(|(mine, theirs)| mine.covers(theirs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventSchema, ValueKind};

    #[test]
    fn any_covers_everything() {
        for t in [
            AttrTest::Any,
            AttrTest::Eq(Value::Int(1)),
            AttrTest::Lt(Value::Int(5)),
            AttrTest::Between(Value::Int(1), Value::Int(3)),
        ] {
            assert!(AttrTest::Any.covers(&t), "{t:?}");
        }
        assert!(!AttrTest::Eq(Value::Int(1)).covers(&AttrTest::Any));
    }

    #[test]
    fn equality_covering() {
        let one = AttrTest::Eq(Value::Int(1));
        assert!(one.covers(&AttrTest::Eq(Value::Int(1))));
        assert!(!one.covers(&AttrTest::Eq(Value::Int(2))));
        // A range covers an equality iff the value satisfies it.
        assert!(AttrTest::Lt(Value::Int(5)).covers(&one));
        assert!(!AttrTest::Gt(Value::Int(5)).covers(&one));
        assert!(AttrTest::Between(Value::Int(0), Value::Int(2)).covers(&one));
        // An equality never covers a range.
        assert!(!one.covers(&AttrTest::Le(Value::Int(1))));
    }

    #[test]
    fn bound_covering() {
        use AttrTest::{Ge, Gt, Le, Lt};
        assert!(Lt(Value::Int(10)).covers(&Lt(Value::Int(5))));
        assert!(!Lt(Value::Int(5)).covers(&Lt(Value::Int(10))));
        assert!(Lt(Value::Int(10)).covers(&Le(Value::Int(9))));
        assert!(!Lt(Value::Int(10)).covers(&Le(Value::Int(10))));
        assert!(Le(Value::Int(10)).covers(&Lt(Value::Int(10))));
        assert!(Gt(Value::Int(5)).covers(&Gt(Value::Int(10))));
        assert!(Gt(Value::Int(5)).covers(&Ge(Value::Int(6))));
        assert!(!Gt(Value::Int(5)).covers(&Ge(Value::Int(5))));
        assert!(Ge(Value::Int(5)).covers(&Gt(Value::Int(5))));
        assert!(!Lt(Value::Int(10)).covers(&Gt(Value::Int(0))));
    }

    #[test]
    fn between_covering() {
        use AttrTest::{Between, Ge, Le, Lt};
        let outer = Between(Value::Int(0), Value::Int(10));
        let inner = Between(Value::Int(2), Value::Int(8));
        assert!(outer.covers(&inner));
        assert!(!inner.covers(&outer));
        assert!(Le(Value::Int(10)).covers(&inner));
        assert!(Lt(Value::Int(9)).covers(&inner));
        assert!(!Lt(Value::Int(8)).covers(&inner));
        assert!(Ge(Value::Int(2)).covers(&inner));
        assert!(!outer.covers(&Le(Value::Int(5))), "unbounded below");
    }

    #[test]
    fn cross_kind_never_covers() {
        assert!(!AttrTest::Lt(Value::Int(5)).covers(&AttrTest::Lt(Value::Dollar(1))));
        assert!(!AttrTest::Eq(Value::Int(0)).covers(&AttrTest::Eq(Value::Dollar(0))));
    }

    #[test]
    fn predicate_covering_is_conjunction_wise() {
        let schema = EventSchema::builder("trades")
            .attribute("issue", ValueKind::Str)
            .attribute("volume", ValueKind::Int)
            .build()
            .unwrap();
        let broad = Predicate::builder(&schema)
            .gt("volume", Value::Int(100))
            .unwrap()
            .build();
        let narrow = Predicate::builder(&schema)
            .eq("issue", Value::str("IBM"))
            .unwrap()
            .gt("volume", Value::Int(1000))
            .unwrap()
            .build();
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        assert!(broad.covers(&broad), "covering is reflexive");
        assert!(Predicate::match_all(&schema).covers(&narrow));
    }

    /// Semantic soundness: whenever `covers` says yes, every matching event
    /// of the covered predicate matches the covering one.
    #[test]
    fn covering_is_semantically_sound_on_enumerable_domain() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let schema = EventSchema::builder("s")
            .attribute_with_domain("a", ValueKind::Int, (0..6).map(Value::Int))
            .attribute_with_domain("b", ValueKind::Int, (0..6).map(Value::Int))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let random_test = |rng: &mut StdRng| -> AttrTest {
            match rng.random_range(0..6) {
                0 => AttrTest::Any,
                1 => AttrTest::Eq(Value::Int(rng.random_range(0..6))),
                2 => AttrTest::Lt(Value::Int(rng.random_range(0..6))),
                3 => AttrTest::Le(Value::Int(rng.random_range(0..6))),
                4 => AttrTest::Ge(Value::Int(rng.random_range(0..6))),
                _ => {
                    let lo = rng.random_range(0..6);
                    let hi = rng.random_range(lo..6);
                    AttrTest::Between(Value::Int(lo), Value::Int(hi))
                }
            }
        };
        for _ in 0..500 {
            let p1 = Predicate::from_tests(&schema, [random_test(&mut rng), random_test(&mut rng)])
                .unwrap();
            let p2 = Predicate::from_tests(&schema, [random_test(&mut rng), random_test(&mut rng)])
                .unwrap();
            if p1.covers(&p2) {
                for a in 0..6 {
                    for b in 0..6 {
                        let e =
                            Event::from_values(&schema, [Value::Int(a), Value::Int(b)]).unwrap();
                        if p2.matches(&e) {
                            assert!(p1.matches(&e), "{p1} claimed to cover {p2} but missed {e}");
                        }
                    }
                }
            }
        }
    }
}
