//! Published events.

use std::fmt;
use std::sync::Arc;

use crate::{Error, EventSchema, Result, Value};

/// A published event: a tuple of values conforming to an [`EventSchema`].
///
/// Events are immutable and cheap to clone (the value tuple is shared), which
/// matters because link matching fans each event out over many links.
///
/// # Example
///
/// ```
/// use linkcast_types::{Event, EventSchema, Value, ValueKind};
///
/// # fn main() -> Result<(), linkcast_types::Error> {
/// let schema = EventSchema::builder("trades")
///     .attribute("issue", ValueKind::Str)
///     .attribute("volume", ValueKind::Int)
///     .build()?;
/// let event = Event::builder(&schema)
///     .set("issue", Value::str("IBM"))?
///     .set("volume", Value::Int(2_500))?
///     .build()?;
/// assert_eq!(event.value_by_name("volume"), Some(&Value::Int(2_500)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    schema: EventSchema,
    values: Arc<[Value]>,
}

impl Event {
    /// Starts building an event against `schema`.
    pub fn builder(schema: &EventSchema) -> EventBuilder {
        EventBuilder {
            schema: schema.clone(),
            values: vec![None; schema.arity()],
        }
    }

    /// Creates an event directly from a full tuple of values, in attribute
    /// order.
    ///
    /// # Errors
    ///
    /// [`Error::MissingAttribute`] if the tuple is shorter than the schema,
    /// [`Error::AttributeOutOfRange`] if longer, and
    /// [`Error::SchemaMismatch`] if any value has the wrong kind.
    pub fn from_values(
        schema: &EventSchema,
        values: impl IntoIterator<Item = Value>,
    ) -> Result<Self> {
        let values: Vec<Value> = values.into_iter().collect();
        if values.len() < schema.arity() {
            let missing = schema.attribute(values.len()).expect("index in range");
            return Err(Error::MissingAttribute(missing.name().to_string()));
        }
        if values.len() > schema.arity() {
            return Err(Error::AttributeOutOfRange {
                index: values.len() - 1,
                arity: schema.arity(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            schema.check_value(i, v)?;
        }
        Ok(Event {
            schema: schema.clone(),
            values: values.into(),
        })
    }

    /// The schema this event conforms to.
    pub fn schema(&self) -> &EventSchema {
        &self.schema
    }

    /// The value tuple, in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at attribute position `index`.
    pub fn value(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// The value of the named attribute.
    pub fn value_by_name(&self, name: &str) -> Option<&Value> {
        self.schema
            .attribute_index(name)
            .and_then(|i| self.values.get(i))
    }
}

impl fmt::Display for Event {
    /// Renders as `trades<"IBM", 119.50, 3000>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<", self.schema.name())?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

/// Incrementally builds an [`Event`]; every attribute must be assigned
/// exactly once before [`build`](EventBuilder::build).
#[derive(Debug, Clone)]
pub struct EventBuilder {
    schema: EventSchema,
    values: Vec<Option<Value>>,
}

impl EventBuilder {
    /// Assigns the named attribute.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownAttribute`] if the name is not in the schema,
    /// [`Error::SchemaMismatch`] if the value has the wrong kind.
    pub fn set(mut self, name: &str, value: Value) -> Result<Self> {
        let index = self
            .schema
            .attribute_index(name)
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))?;
        self.schema.check_value(index, &value)?;
        self.values[index] = Some(value);
        Ok(self)
    }

    /// Assigns the attribute at position `index`.
    ///
    /// # Errors
    ///
    /// [`Error::AttributeOutOfRange`] or [`Error::SchemaMismatch`].
    pub fn set_index(mut self, index: usize, value: Value) -> Result<Self> {
        self.schema.check_value(index, &value)?;
        self.values[index] = Some(value);
        Ok(self)
    }

    /// Finalizes the event.
    ///
    /// # Errors
    ///
    /// [`Error::MissingAttribute`] if any attribute was never assigned.
    pub fn build(self) -> Result<Event> {
        let mut out = Vec::with_capacity(self.values.len());
        for (i, slot) in self.values.into_iter().enumerate() {
            match slot {
                Some(v) => out.push(v),
                None => {
                    let name = self.schema.attribute(i).expect("index in range").name();
                    return Err(Error::MissingAttribute(name.to_string()));
                }
            }
        }
        Ok(Event {
            schema: self.schema,
            values: out.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValueKind;

    fn trades() -> EventSchema {
        EventSchema::builder("trades")
            .attribute("issue", ValueKind::Str)
            .attribute("price", ValueKind::Dollar)
            .attribute("volume", ValueKind::Int)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_by_name_and_index() {
        let e = Event::builder(&trades())
            .set("issue", Value::str("IBM"))
            .unwrap()
            .set_index(1, Value::dollar(119, 50))
            .unwrap()
            .set("volume", Value::Int(3000))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(e.value(0), Some(&Value::str("IBM")));
        assert_eq!(e.value_by_name("price"), Some(&Value::Dollar(11950)));
        assert_eq!(e.values().len(), 3);
    }

    #[test]
    fn builder_rejects_unknown_attribute() {
        let err = Event::builder(&trades())
            .set("nope", Value::Int(1))
            .unwrap_err();
        assert!(matches!(err, Error::UnknownAttribute(_)));
    }

    #[test]
    fn builder_rejects_wrong_kind() {
        let err = Event::builder(&trades())
            .set("volume", Value::str("many"))
            .unwrap_err();
        assert!(matches!(err, Error::SchemaMismatch { .. }));
    }

    #[test]
    fn builder_requires_all_attributes() {
        let err = Event::builder(&trades())
            .set("issue", Value::str("IBM"))
            .unwrap()
            .build()
            .unwrap_err();
        assert_eq!(err, Error::MissingAttribute("price".to_string()));
    }

    #[test]
    fn from_values_validates_length_and_kinds() {
        let s = trades();
        let ok = Event::from_values(&s, [Value::str("IBM"), Value::Dollar(100), Value::Int(1)]);
        assert!(ok.is_ok());

        let short = Event::from_values(&s, [Value::str("IBM")]);
        assert!(matches!(short, Err(Error::MissingAttribute(_))));

        let long = Event::from_values(
            &s,
            [
                Value::str("IBM"),
                Value::Dollar(100),
                Value::Int(1),
                Value::Int(2),
            ],
        );
        assert!(matches!(long, Err(Error::AttributeOutOfRange { .. })));

        let wrong = Event::from_values(&s, [Value::Int(1), Value::Dollar(100), Value::Int(1)]);
        assert!(matches!(wrong, Err(Error::SchemaMismatch { .. })));
    }

    #[test]
    fn display_renders_tuple() {
        let e = Event::from_values(
            &trades(),
            [Value::str("IBM"), Value::Dollar(11950), Value::Int(3000)],
        )
        .unwrap();
        assert_eq!(e.to_string(), "trades<\"IBM\", 119.50, 3000>");
    }

    #[test]
    fn clone_shares_values() {
        let e = Event::from_values(
            &trades(),
            [Value::str("IBM"), Value::Dollar(1), Value::Int(1)],
        )
        .unwrap();
        let f = e.clone();
        assert_eq!(e, f);
        assert!(Arc::ptr_eq(&e.values, &f.values));
    }
}
