//! Textual subscription language.
//!
//! Clients subscribe "by ... providing subscription information which
//! includes a predicate expression of event attributes" (§4.2). The concrete
//! grammar accepted here:
//!
//! ```text
//! predicate := '(' conjunction ')' | conjunction
//! conjunction := term ('&' term)*
//! term := ident op literal
//!       | ident 'between' literal 'and' literal
//!       | ident '=' '*'
//! op := '=' | '==' | '<' | '<=' | '>' | '>='
//! literal := '"' chars '"' | number | 'true' | 'false'
//! ```
//!
//! Number literals are typed by the attribute they are compared against: an
//! `integer` attribute takes whole numbers, a `dollar` attribute takes
//! `120`, `119.5`, or `119.50` (at most two decimal places).

use std::fmt;

use crate::{AttrTest, Error, EventSchema, Predicate, Result, Value, ValueKind};

/// Error produced when a predicate expression fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePredicateError {
    position: usize,
    message: String,
}

impl ParsePredicateError {
    /// Creates a parse error at a byte offset in the input.
    pub fn new(position: usize, message: impl Into<String>) -> Self {
        Self {
            position,
            message: message.into(),
        }
    }

    /// Byte offset in the input where the error was detected.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParsePredicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "predicate parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParsePredicateError {}

/// Parses a subscription predicate expression against a schema.
///
/// # Example
///
/// ```
/// use linkcast_types::{EventSchema, ValueKind, parse_predicate};
///
/// # fn main() -> Result<(), linkcast_types::Error> {
/// let schema = EventSchema::builder("trades")
///     .attribute("issue", ValueKind::Str)
///     .attribute("price", ValueKind::Dollar)
///     .attribute("volume", ValueKind::Int)
///     .build()?;
/// let p = parse_predicate(&schema, r#"(issue = "IBM" & price < 120 & volume > 1000)"#)?;
/// assert_eq!(p.non_wildcard_count(), 3);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`Error::ParsePredicate`] for syntax errors,
/// [`Error::UnknownAttribute`] for attributes not in the schema,
/// [`Error::SchemaMismatch`] for mistyped literals, and
/// [`Error::UnsupportedOperator`] for ordered comparisons on booleans.
pub fn parse_predicate(schema: &EventSchema, input: &str) -> Result<Predicate> {
    let mut parser = Parser {
        schema,
        lexer: Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        },
        tests: vec![AttrTest::Any; schema.arity()],
    };
    parser.parse()?;
    Predicate::from_tests(schema, parser.tests)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Number(String),
    Op(&'static str),
    LParen,
    RParen,
    Amp,
    Star,
    Eof,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Str(s) => format!("string {s:?}"),
            Token::Number(s) => format!("number `{s}`"),
            Token::Op(op) => format!("operator `{op}`"),
            Token::LParen => "`(`".to_string(),
            Token::RParen => "`)`".to_string(),
            Token::Amp => "`&`".to_string(),
            Token::Star => "`*`".to_string(),
            Token::Eof => "end of input".to_string(),
        }
    }
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<(usize, Token), ParsePredicateError> {
        self.skip_ws();
        let start = self.pos;
        let c = match self.bytes.get(self.pos) {
            None => return Ok((start, Token::Eof)),
            Some(&c) => c,
        };
        match c {
            b'(' => {
                self.pos += 1;
                Ok((start, Token::LParen))
            }
            b')' => {
                self.pos += 1;
                Ok((start, Token::RParen))
            }
            b'&' => {
                self.pos += 1;
                // Tolerate `&&` as a synonym for `&`.
                if self.bytes.get(self.pos) == Some(&b'&') {
                    self.pos += 1;
                }
                Ok((start, Token::Amp))
            }
            b'*' => {
                self.pos += 1;
                Ok((start, Token::Star))
            }
            b'=' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                }
                Ok((start, Token::Op("=")))
            }
            b'<' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Ok((start, Token::Op("<=")))
                } else {
                    Ok((start, Token::Op("<")))
                }
            }
            b'>' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Ok((start, Token::Op(">=")))
                } else {
                    Ok((start, Token::Op(">")))
                }
            }
            b'"' => {
                self.pos += 1;
                let mut out = String::new();
                loop {
                    match self.bytes.get(self.pos) {
                        None => {
                            return Err(ParsePredicateError::new(
                                start,
                                "unterminated string literal",
                            ))
                        }
                        Some(b'"') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.bytes.get(self.pos) {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                _ => {
                                    return Err(ParsePredicateError::new(
                                        self.pos,
                                        "invalid escape in string literal",
                                    ))
                                }
                            }
                            self.pos += 1;
                        }
                        Some(_) => {
                            // Advance over one UTF-8 character. `pos` is
                            // always char-aligned, but route the impossible
                            // misalignment to a parse error anyway rather
                            // than panic on untrusted input.
                            let Some(ch) =
                                self.input.get(self.pos..).and_then(|r| r.chars().next())
                            else {
                                return Err(ParsePredicateError::new(
                                    self.pos,
                                    "malformed UTF-8 in string literal",
                                ));
                            };
                            out.push(ch);
                            self.pos += ch.len_utf8();
                        }
                    }
                }
                Ok((start, Token::Str(out)))
            }
            b'0'..=b'9' | b'-' => {
                self.pos += 1;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_digit() || *b == b'.')
                {
                    self.pos += 1;
                }
                Ok((
                    start,
                    // analyzer:allow(index): ASCII byte-scan bounds — start and pos are always char-aligned and <= len
                    Token::Number(self.input[start..self.pos].to_string()),
                ))
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                self.pos += 1;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                {
                    self.pos += 1;
                }
                // analyzer:allow(index): ASCII byte-scan bounds — start and pos are always char-aligned and <= len
                Ok((start, Token::Ident(self.input[start..self.pos].to_string())))
            }
            other => Err(ParsePredicateError::new(
                start,
                format!("unexpected character `{}`", other as char),
            )),
        }
    }
}

struct Parser<'a> {
    schema: &'a EventSchema,
    lexer: Lexer<'a>,
    tests: Vec<AttrTest>,
}

impl Parser<'_> {
    fn parse(&mut self) -> Result<()> {
        let (pos, tok) = self.lexer.next().map_err(Error::ParsePredicate)?;
        let (outer_paren, first) = if tok == Token::LParen {
            (true, self.lexer.next().map_err(Error::ParsePredicate)?)
        } else {
            (false, (pos, tok))
        };
        self.term(first)?;
        loop {
            let (pos, tok) = self.lexer.next().map_err(Error::ParsePredicate)?;
            match tok {
                Token::Amp => {
                    let next = self.lexer.next().map_err(Error::ParsePredicate)?;
                    self.term(next)?;
                }
                Token::RParen if outer_paren => {
                    let (pos, tok) = self.lexer.next().map_err(Error::ParsePredicate)?;
                    if tok != Token::Eof {
                        return Err(Error::ParsePredicate(ParsePredicateError::new(
                            pos,
                            format!("expected end of input, found {}", tok.describe()),
                        )));
                    }
                    return Ok(());
                }
                Token::Eof if !outer_paren => return Ok(()),
                other => {
                    return Err(Error::ParsePredicate(ParsePredicateError::new(
                        pos,
                        format!("expected `&`, found {}", other.describe()),
                    )))
                }
            }
        }
    }

    fn term(&mut self, first: (usize, Token)) -> Result<()> {
        let (pos, tok) = first;
        let name = match tok {
            Token::Ident(name) => name,
            other => {
                return Err(Error::ParsePredicate(ParsePredicateError::new(
                    pos,
                    format!("expected attribute name, found {}", other.describe()),
                )))
            }
        };
        let index = self
            .schema
            .attribute_index(&name)
            .ok_or_else(|| Error::UnknownAttribute(name.clone()))?;
        let kind = self
            .schema
            .attribute(index)
            .ok_or_else(|| Error::UnknownAttribute(name.clone()))?
            .kind();

        let (op_pos, op_tok) = self.lexer.next().map_err(Error::ParsePredicate)?;
        let test = match op_tok {
            Token::Op(op) => {
                let (lit_pos, lit_tok) = self.lexer.next().map_err(Error::ParsePredicate)?;
                if op == "=" && lit_tok == Token::Star {
                    AttrTest::Any
                } else {
                    let value = self.literal(kind, lit_pos, lit_tok)?;
                    match op {
                        "=" => AttrTest::Eq(value),
                        "<" => AttrTest::Lt(value),
                        "<=" => AttrTest::Le(value),
                        ">" => AttrTest::Gt(value),
                        ">=" => AttrTest::Ge(value),
                        other => {
                            // The lexer only produces the operators above;
                            // fail as a parse error rather than panic.
                            return Err(Error::ParsePredicate(ParsePredicateError::new(
                                op_pos,
                                format!("unsupported operator `{other}`"),
                            )));
                        }
                    }
                }
            }
            Token::Ident(word) if word == "between" => {
                let (p1, t1) = self.lexer.next().map_err(Error::ParsePredicate)?;
                let lo = self.literal(kind, p1, t1)?;
                let (p2, t2) = self.lexer.next().map_err(Error::ParsePredicate)?;
                match t2 {
                    Token::Ident(w) if w == "and" => {}
                    other => {
                        return Err(Error::ParsePredicate(ParsePredicateError::new(
                            p2,
                            format!("expected `and`, found {}", other.describe()),
                        )))
                    }
                }
                let (p3, t3) = self.lexer.next().map_err(Error::ParsePredicate)?;
                let hi = self.literal(kind, p3, t3)?;
                AttrTest::Between(lo, hi)
            }
            other => {
                return Err(Error::ParsePredicate(ParsePredicateError::new(
                    op_pos,
                    format!("expected comparison operator, found {}", other.describe()),
                )))
            }
        };
        let attr = self
            .schema
            .attribute(index)
            .ok_or_else(|| Error::UnknownAttribute(name.clone()))?;
        test.check_kind(attr.name(), attr.kind())?;
        match self.tests.get_mut(index) {
            Some(slot) => *slot = test,
            None => return Err(Error::UnknownAttribute(name)),
        }
        Ok(())
    }

    fn literal(&mut self, kind: ValueKind, pos: usize, tok: Token) -> Result<Value> {
        match (kind, tok) {
            (ValueKind::Str, Token::Str(s)) => Ok(Value::str(s)),
            (ValueKind::Int, Token::Number(n)) => n.parse::<i64>().map(Value::Int).map_err(|_| {
                Error::ParsePredicate(ParsePredicateError::new(
                    pos,
                    format!("`{n}` is not a valid integer"),
                ))
            }),
            (ValueKind::Dollar, Token::Number(n)) => parse_dollar(&n)
                .map_err(|msg| Error::ParsePredicate(ParsePredicateError::new(pos, msg))),
            (ValueKind::Bool, Token::Ident(w)) if w == "true" => Ok(Value::Bool(true)),
            (ValueKind::Bool, Token::Ident(w)) if w == "false" => Ok(Value::Bool(false)),
            (kind, other) => Err(Error::ParsePredicate(ParsePredicateError::new(
                pos,
                format!("expected a {kind} literal, found {}", other.describe()),
            ))),
        }
    }
}

/// Parses `120`, `119.5`, or `119.50` into cents.
fn parse_dollar(text: &str) -> Result<Value, String> {
    let (neg, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let (whole, frac) = match digits.split_once('.') {
        None => (digits, ""),
        Some((w, f)) => (w, f),
    };
    if whole.is_empty() || whole.bytes().any(|b| !b.is_ascii_digit()) {
        return Err(format!("`{text}` is not a valid dollar amount"));
    }
    let cents_frac: i64 = match frac.len() {
        0 => 0,
        1 => {
            let d = frac
                .parse::<i64>()
                .map_err(|_| format!("`{text}` is not a valid dollar amount"))?;
            d * 10
        }
        2 => frac
            .parse::<i64>()
            .map_err(|_| format!("`{text}` is not a valid dollar amount"))?,
        _ => {
            return Err(format!(
                "`{text}` has more than two decimal places in a dollar amount"
            ))
        }
    };
    let whole: i64 = whole
        .parse()
        .map_err(|_| format!("`{text}` is out of range for a dollar amount"))?;
    let cents = whole * 100 + cents_frac;
    Ok(Value::Dollar(if neg { -cents } else { cents }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn trades() -> EventSchema {
        EventSchema::builder("trades")
            .attribute("issue", ValueKind::Str)
            .attribute("price", ValueKind::Dollar)
            .attribute("volume", ValueKind::Int)
            .attribute("urgent", ValueKind::Bool)
            .build()
            .unwrap()
    }

    #[test]
    fn parses_paper_example() {
        let p =
            parse_predicate(&trades(), r#"(issue="IBM" & price < 120 & volume > 1000)"#).unwrap();
        assert_eq!(p.test(0), Some(&AttrTest::Eq(Value::str("IBM"))));
        assert_eq!(p.test(1), Some(&AttrTest::Lt(Value::Dollar(12000))));
        assert_eq!(p.test(2), Some(&AttrTest::Gt(Value::Int(1000))));
        assert_eq!(p.test(3), Some(&AttrTest::Any));
    }

    #[test]
    fn parses_without_parentheses() {
        let p = parse_predicate(&trades(), r#"volume >= 500"#).unwrap();
        assert_eq!(p.test(2), Some(&AttrTest::Ge(Value::Int(500))));
    }

    #[test]
    fn parses_dollar_forms() {
        for (text, cents) in [
            ("price < 120", 12000),
            ("price < 120.5", 12050),
            ("price < 120.50", 12050),
            ("price < 0.07", 7),
            ("price < -3.25", -325),
        ] {
            let p = parse_predicate(&trades(), text).unwrap();
            assert_eq!(
                p.test(1),
                Some(&AttrTest::Lt(Value::Dollar(cents))),
                "{text}"
            );
        }
    }

    #[test]
    fn rejects_three_decimal_places() {
        let err = parse_predicate(&trades(), "price < 1.005").unwrap_err();
        assert!(err.to_string().contains("decimal places"), "{err}");
    }

    #[test]
    fn parses_between() {
        let p = parse_predicate(&trades(), "price between 100 and 120").unwrap();
        assert_eq!(
            p.test(1),
            Some(&AttrTest::Between(
                Value::Dollar(10000),
                Value::Dollar(12000)
            ))
        );
    }

    #[test]
    fn parses_booleans_and_star() {
        let p = parse_predicate(&trades(), "urgent = true & issue = *").unwrap();
        assert_eq!(p.test(3), Some(&AttrTest::Eq(Value::Bool(true))));
        assert_eq!(p.test(0), Some(&AttrTest::Any));
    }

    #[test]
    fn double_equals_and_double_amp_are_tolerated() {
        let p = parse_predicate(&trades(), r#"issue == "IBM" && volume > 1"#).unwrap();
        assert_eq!(p.non_wildcard_count(), 2);
    }

    #[test]
    fn unknown_attribute_is_reported() {
        let err = parse_predicate(&trades(), "ticker = \"IBM\"").unwrap_err();
        assert!(matches!(err, Error::UnknownAttribute(_)));
    }

    #[test]
    fn type_errors_are_reported() {
        let err = parse_predicate(&trades(), "issue = 5").unwrap_err();
        assert!(matches!(err, Error::ParsePredicate(_)));
        let err = parse_predicate(&trades(), "urgent < true").unwrap_err();
        assert!(
            err.to_string().contains("expected a boolean literal")
                || matches!(err, Error::UnsupportedOperator { .. }),
            "{err}"
        );
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let err = parse_predicate(&trades(), "issue = ").unwrap_err();
        match err {
            Error::ParsePredicate(e) => {
                assert!(e.position() >= 8, "position {}", e.position());
                assert!(!e.message().is_empty());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unbalanced_paren_is_rejected() {
        assert!(parse_predicate(&trades(), "(volume > 1").is_err());
        assert!(parse_predicate(&trades(), "volume > 1)").is_err());
        assert!(parse_predicate(&trades(), "(volume > 1) x").is_err());
    }

    #[test]
    fn string_escapes() {
        let p = parse_predicate(&trades(), r#"issue = "A\"B\\C""#).unwrap();
        assert_eq!(p.test(0), Some(&AttrTest::Eq(Value::str("A\"B\\C"))));
        assert!(parse_predicate(&trades(), r#"issue = "unterminated"#).is_err());
        assert!(parse_predicate(&trades(), r#"issue = "bad \x""#).is_err());
    }

    #[test]
    fn duplicate_attribute_keeps_last_test() {
        // The grammar is a conjunction of per-attribute tests; a repeated
        // attribute overwrites (documented behaviour, simplest semantics).
        let p = parse_predicate(&trades(), "volume > 1 & volume > 10").unwrap();
        assert_eq!(p.test(2), Some(&AttrTest::Gt(Value::Int(10))));
    }

    #[test]
    fn parsed_predicate_matches_events() {
        let schema = trades();
        let p =
            parse_predicate(&schema, r#"(issue="IBM" & price < 120.00 & volume > 1000)"#).unwrap();
        let hit = Event::from_values(
            &schema,
            [
                Value::str("IBM"),
                Value::dollar(119, 99),
                Value::Int(1001),
                Value::Bool(false),
            ],
        )
        .unwrap();
        let miss = Event::from_values(
            &schema,
            [
                Value::str("HP"),
                Value::dollar(119, 99),
                Value::Int(1001),
                Value::Bool(false),
            ],
        )
        .unwrap();
        assert!(p.matches(&hit));
        assert!(!p.matches(&miss));
    }
}
