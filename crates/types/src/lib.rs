//! Core data model for the `linkcast` content-based publish/subscribe system.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! - [`Value`] and [`ValueKind`]: the typed attribute values events carry.
//! - [`EventSchema`] and [`SchemaRegistry`]: information spaces, each with a
//!   fixed tuple of named, typed attributes (e.g. `[issue: string,
//!   price: dollar, volume: integer]`).
//! - [`Event`]: a published tuple of values conforming to a schema.
//! - [`Predicate`] and [`AttrTest`]: content-based subscriptions — a
//!   conjunction of per-attribute tests such as
//!   `issue = "IBM" & price < 120.00 & volume > 1000`.
//! - [`parse_predicate`]: the textual subscription language.
//! - [`Trit`] and [`TritVec`]: the three-valued (Yes/No/Maybe) link
//!   annotations at the heart of the link-matching protocol, with the
//!   *Alternative Combine* and *Parallel Combine* operators from the paper.
//! - [`wire`]: a compact, length-prefixed binary codec used by the broker
//!   prototype's transport.
//!
//! # Example
//!
//! ```
//! use linkcast_types::{EventSchema, ValueKind, Event, Value, parse_predicate};
//!
//! # fn main() -> Result<(), linkcast_types::Error> {
//! let schema = EventSchema::builder("trades")
//!     .attribute("issue", ValueKind::Str)
//!     .attribute("price", ValueKind::Dollar)
//!     .attribute("volume", ValueKind::Int)
//!     .build()?;
//!
//! let event = Event::builder(&schema)
//!     .set("issue", Value::str("IBM"))?
//!     .set("price", Value::dollar(119, 50))?
//!     .set("volume", Value::Int(3000))?
//!     .build()?;
//!
//! let sub = parse_predicate(&schema, r#"issue = "IBM" & price < 120.00 & volume > 1000"#)?;
//! assert!(sub.matches(&event));
//! # Ok(())
//! # }
//! ```

mod covering;
mod error;
mod event;
mod id;
mod parser;
mod predicate;
mod schema;
mod subscription;
mod trit;
mod value;
pub mod wire;

pub use error::{Error, Result};
pub use event::{Event, EventBuilder};
pub use id::{BrokerId, ClientId, EventId, LinkId, SchemaId, SubscriberId, SubscriptionId};
pub use parser::{parse_predicate, ParsePredicateError};
pub use predicate::{AttrTest, Predicate, PredicateBuilder};
pub use schema::{AttributeDef, EventSchema, EventSchemaBuilder, SchemaRegistry};
pub use subscription::Subscription;
pub use trit::{Trit, TritVec};
pub use value::{Value, ValueKind};
