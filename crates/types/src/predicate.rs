//! Subscription predicates: conjunctions of per-attribute tests.

use std::fmt;

use crate::{Error, Event, EventSchema, Result, Value, ValueKind};

/// A test applied to a single attribute of an event.
///
/// The paper's parallel search tree branches on equality tests and `*`
/// ("don't care") branches, and notes that "range tests are also possible";
/// this type covers both.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrTest {
    /// `*` — the subscription does not care about this attribute.
    Any,
    /// `attr = v`.
    Eq(Value),
    /// `attr < v`.
    Lt(Value),
    /// `attr <= v`.
    Le(Value),
    /// `attr > v`.
    Gt(Value),
    /// `attr >= v`.
    Ge(Value),
    /// `lo <= attr <= hi` (both bounds inclusive).
    Between(Value, Value),
}

impl AttrTest {
    /// Evaluates the test against an attribute value.
    ///
    /// A value of a different kind than the operand never satisfies a
    /// non-`Any` test.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            AttrTest::Any => true,
            AttrTest::Eq(v) => value == v,
            AttrTest::Lt(v) => value.kind() == v.kind() && value < v,
            AttrTest::Le(v) => value.kind() == v.kind() && value <= v,
            AttrTest::Gt(v) => value.kind() == v.kind() && value > v,
            AttrTest::Ge(v) => value.kind() == v.kind() && value >= v,
            AttrTest::Between(lo, hi) => value.kind() == lo.kind() && lo <= value && value <= hi,
        }
    }

    /// Whether this is the `*` (don't care) test.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, AttrTest::Any)
    }

    /// Whether this is an equality test.
    pub fn is_equality(&self) -> bool {
        matches!(self, AttrTest::Eq(_))
    }

    /// The operand value(s) of the test, if any.
    pub fn operand(&self) -> Option<&Value> {
        match self {
            AttrTest::Any => None,
            AttrTest::Eq(v)
            | AttrTest::Lt(v)
            | AttrTest::Le(v)
            | AttrTest::Gt(v)
            | AttrTest::Ge(v) => Some(v),
            AttrTest::Between(lo, _) => Some(lo),
        }
    }

    /// Validates that the test's operand kinds are consistent and that the
    /// operator is meaningful for `kind`.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] for operand-kind mismatches (reported with
    /// `attribute` filled in by the caller via [`Predicate`] construction) or
    /// [`Error::UnsupportedOperator`] for ordered comparisons on booleans.
    pub fn check_kind(&self, attribute: &str, kind: ValueKind) -> Result<()> {
        let check_operand = |v: &Value| -> Result<()> {
            if v.kind() != kind {
                Err(Error::SchemaMismatch {
                    attribute: attribute.to_string(),
                    expected: kind,
                    actual: v.kind(),
                })
            } else {
                Ok(())
            }
        };
        let ordered = |op: &'static str| -> Result<()> {
            if kind == ValueKind::Bool {
                Err(Error::UnsupportedOperator { operator: op, kind })
            } else {
                Ok(())
            }
        };
        match self {
            AttrTest::Any => Ok(()),
            AttrTest::Eq(v) => check_operand(v),
            AttrTest::Lt(v) => ordered("<").and_then(|()| check_operand(v)),
            AttrTest::Le(v) => ordered("<=").and_then(|()| check_operand(v)),
            AttrTest::Gt(v) => ordered(">").and_then(|()| check_operand(v)),
            AttrTest::Ge(v) => ordered(">=").and_then(|()| check_operand(v)),
            AttrTest::Between(lo, hi) => {
                ordered("between")?;
                check_operand(lo)?;
                check_operand(hi)
            }
        }
    }

    /// Renders the test applied to the named attribute, e.g. `price < 120.00`.
    pub fn display_with(&self, name: &str) -> String {
        match self {
            AttrTest::Any => format!("{name} = *"),
            AttrTest::Eq(v) => format!("{name} = {v}"),
            AttrTest::Lt(v) => format!("{name} < {v}"),
            AttrTest::Le(v) => format!("{name} <= {v}"),
            AttrTest::Gt(v) => format!("{name} > {v}"),
            AttrTest::Ge(v) => format!("{name} >= {v}"),
            AttrTest::Between(lo, hi) => format!("{name} between {lo} and {hi}"),
        }
    }
}

/// A content-based subscription predicate: one [`AttrTest`] per schema
/// attribute, all of which must hold (a conjunction).
///
/// # Example
///
/// ```
/// use linkcast_types::{EventSchema, Predicate, Value, ValueKind, Event};
///
/// # fn main() -> Result<(), linkcast_types::Error> {
/// let schema = EventSchema::builder("trades")
///     .attribute("issue", ValueKind::Str)
///     .attribute("price", ValueKind::Dollar)
///     .attribute("volume", ValueKind::Int)
///     .build()?;
/// let pred = Predicate::builder(&schema)
///     .eq("issue", Value::str("IBM"))?
///     .lt("price", Value::dollar(120, 0))?
///     .gt("volume", Value::Int(1000))?
///     .build();
///
/// let event = Event::from_values(
///     &schema,
///     [Value::str("IBM"), Value::dollar(119, 50), Value::Int(3000)],
/// )?;
/// assert!(pred.matches(&event));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    tests: Vec<AttrTest>,
}

impl Predicate {
    /// Starts building a predicate over `schema`; attributes not mentioned
    /// default to `*`.
    pub fn builder(schema: &EventSchema) -> PredicateBuilder {
        PredicateBuilder {
            schema: schema.clone(),
            tests: vec![AttrTest::Any; schema.arity()],
        }
    }

    /// Creates a predicate directly from one test per attribute, in schema
    /// order.
    ///
    /// # Errors
    ///
    /// [`Error::AttributeOutOfRange`] if the number of tests differs from the
    /// schema arity, plus any kind error from [`AttrTest::check_kind`].
    pub fn from_tests(
        schema: &EventSchema,
        tests: impl IntoIterator<Item = AttrTest>,
    ) -> Result<Self> {
        let tests: Vec<AttrTest> = tests.into_iter().collect();
        if tests.len() != schema.arity() {
            return Err(Error::AttributeOutOfRange {
                index: tests.len(),
                arity: schema.arity(),
            });
        }
        for (i, t) in tests.iter().enumerate() {
            let attr = schema.attribute(i).expect("index in range");
            t.check_kind(attr.name(), attr.kind())?;
        }
        Ok(Predicate { tests })
    }

    /// The predicate that matches every event of the schema (all `*`).
    pub fn match_all(schema: &EventSchema) -> Self {
        Predicate {
            tests: vec![AttrTest::Any; schema.arity()],
        }
    }

    /// The per-attribute tests, in schema order.
    pub fn tests(&self) -> &[AttrTest] {
        &self.tests
    }

    /// The test applied to attribute `index`.
    pub fn test(&self, index: usize) -> Option<&AttrTest> {
        self.tests.get(index)
    }

    /// Evaluates the predicate against an event.
    ///
    /// Events with fewer attributes than the predicate never match; this
    /// only arises if the event was built against a different schema.
    pub fn matches(&self, event: &Event) -> bool {
        if event.values().len() != self.tests.len() {
            return false;
        }
        self.tests
            .iter()
            .zip(event.values())
            .all(|(t, v)| t.matches(v))
    }

    /// Number of non-`*` tests — a crude selectivity measure; the paper's
    /// PST heuristic places attributes with the fewest `*` tests near the
    /// root.
    pub fn non_wildcard_count(&self) -> usize {
        self.tests.iter().filter(|t| !t.is_wildcard()).count()
    }

    /// Whether every test is an equality or `*` — the fragment for which the
    /// paper defines trit annotation directly (§3.1).
    pub fn is_equality_only(&self) -> bool {
        self.tests
            .iter()
            .all(|t| t.is_wildcard() || t.is_equality())
    }

    /// Renders the predicate using the schema's attribute names, e.g.
    /// `issue = "IBM" & price < 120.00`. All-`*` predicates render as `true`.
    pub fn display_with(&self, schema: &EventSchema) -> String {
        let parts: Vec<String> = self
            .tests
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_wildcard())
            .map(|(i, t)| {
                let name = schema
                    .attribute(i)
                    .map(|a| a.name().to_string())
                    .unwrap_or_else(|| format!("a{i}"));
                t.display_with(&name)
            })
            .collect();
        if parts.is_empty() {
            "true".to_string()
        } else {
            parts.join(" & ")
        }
    }
}

impl fmt::Display for Predicate {
    /// Renders positionally (`a0 = 1 & a2 < 5`); use
    /// [`Predicate::display_with`] to render with schema attribute names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, t) in self.tests.iter().enumerate() {
            if t.is_wildcard() {
                continue;
            }
            if !first {
                write!(f, " & ")?;
            }
            first = false;
            write!(f, "{}", t.display_with(&format!("a{i}")))?;
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

/// Incrementally builds a [`Predicate`] by naming attributes.
#[derive(Debug)]
pub struct PredicateBuilder {
    schema: EventSchema,
    tests: Vec<AttrTest>,
}

impl PredicateBuilder {
    fn set(mut self, name: &str, test: AttrTest) -> Result<Self> {
        let index = self
            .schema
            .attribute_index(name)
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))?;
        let attr = self.schema.attribute(index).expect("index in range");
        test.check_kind(attr.name(), attr.kind())?;
        self.tests[index] = test;
        Ok(self)
    }

    /// Requires `name = value`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownAttribute`] or [`Error::SchemaMismatch`].
    pub fn eq(self, name: &str, value: Value) -> Result<Self> {
        self.set(name, AttrTest::Eq(value))
    }

    /// Requires `name < value`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownAttribute`], [`Error::SchemaMismatch`], or
    /// [`Error::UnsupportedOperator`] on booleans.
    pub fn lt(self, name: &str, value: Value) -> Result<Self> {
        self.set(name, AttrTest::Lt(value))
    }

    /// Requires `name <= value`.
    ///
    /// # Errors
    ///
    /// See [`PredicateBuilder::lt`].
    pub fn le(self, name: &str, value: Value) -> Result<Self> {
        self.set(name, AttrTest::Le(value))
    }

    /// Requires `name > value`.
    ///
    /// # Errors
    ///
    /// See [`PredicateBuilder::lt`].
    pub fn gt(self, name: &str, value: Value) -> Result<Self> {
        self.set(name, AttrTest::Gt(value))
    }

    /// Requires `name >= value`.
    ///
    /// # Errors
    ///
    /// See [`PredicateBuilder::lt`].
    pub fn ge(self, name: &str, value: Value) -> Result<Self> {
        self.set(name, AttrTest::Ge(value))
    }

    /// Requires `lo <= name <= hi`.
    ///
    /// # Errors
    ///
    /// See [`PredicateBuilder::lt`].
    pub fn between(self, name: &str, lo: Value, hi: Value) -> Result<Self> {
        self.set(name, AttrTest::Between(lo, hi))
    }

    /// Explicitly marks `name` as don't-care (the default).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownAttribute`].
    pub fn any(self, name: &str) -> Result<Self> {
        self.set(name, AttrTest::Any)
    }

    /// Finalizes the predicate.
    pub fn build(self) -> Predicate {
        Predicate { tests: self.tests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trades() -> EventSchema {
        EventSchema::builder("trades")
            .attribute("issue", ValueKind::Str)
            .attribute("price", ValueKind::Dollar)
            .attribute("volume", ValueKind::Int)
            .build()
            .unwrap()
    }

    fn ibm_event(price_cents: i64, volume: i64) -> Event {
        Event::from_values(
            &trades(),
            [
                Value::str("IBM"),
                Value::Dollar(price_cents),
                Value::Int(volume),
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_predicate() {
        // (issue="IBM" & price < 120 & volume > 1000)
        let p = Predicate::builder(&trades())
            .eq("issue", Value::str("IBM"))
            .unwrap()
            .lt("price", Value::dollar(120, 0))
            .unwrap()
            .gt("volume", Value::Int(1000))
            .unwrap()
            .build();
        assert!(p.matches(&ibm_event(11950, 3000)));
        assert!(!p.matches(&ibm_event(12050, 3000))); // price too high
        assert!(!p.matches(&ibm_event(11950, 1000))); // volume not > 1000
        assert_eq!(p.non_wildcard_count(), 3);
        assert!(!p.is_equality_only());
    }

    #[test]
    fn attr_test_semantics() {
        let v = Value::Int(5);
        assert!(AttrTest::Any.matches(&v));
        assert!(AttrTest::Eq(Value::Int(5)).matches(&v));
        assert!(!AttrTest::Eq(Value::Int(6)).matches(&v));
        assert!(AttrTest::Lt(Value::Int(6)).matches(&v));
        assert!(!AttrTest::Lt(Value::Int(5)).matches(&v));
        assert!(AttrTest::Le(Value::Int(5)).matches(&v));
        assert!(AttrTest::Gt(Value::Int(4)).matches(&v));
        assert!(!AttrTest::Gt(Value::Int(5)).matches(&v));
        assert!(AttrTest::Ge(Value::Int(5)).matches(&v));
        assert!(AttrTest::Between(Value::Int(5), Value::Int(7)).matches(&v));
        assert!(AttrTest::Between(Value::Int(0), Value::Int(5)).matches(&v));
        assert!(!AttrTest::Between(Value::Int(6), Value::Int(7)).matches(&v));
    }

    #[test]
    fn cross_kind_operands_never_match() {
        assert!(!AttrTest::Eq(Value::Int(0)).matches(&Value::Dollar(0)));
        assert!(!AttrTest::Lt(Value::Int(10)).matches(&Value::Dollar(0)));
        assert!(!AttrTest::Between(Value::Int(0), Value::Int(9)).matches(&Value::Dollar(5)));
    }

    #[test]
    fn match_all_matches_everything() {
        let p = Predicate::match_all(&trades());
        assert!(p.matches(&ibm_event(1, 1)));
        assert_eq!(p.non_wildcard_count(), 0);
        assert!(p.is_equality_only());
        assert_eq!(p.to_string(), "true");
    }

    #[test]
    fn builder_rejects_bad_kinds_and_names() {
        let b = Predicate::builder(&trades());
        assert!(matches!(
            b.eq("nope", Value::Int(1)),
            Err(Error::UnknownAttribute(_))
        ));
        let b = Predicate::builder(&trades());
        assert!(matches!(
            b.eq("price", Value::Int(1)),
            Err(Error::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn ordered_operators_rejected_on_bool() {
        let schema = EventSchema::builder("s")
            .attribute("flag", ValueKind::Bool)
            .build()
            .unwrap();
        let b = Predicate::builder(&schema);
        assert!(matches!(
            b.lt("flag", Value::Bool(false)),
            Err(Error::UnsupportedOperator { .. })
        ));
        // Equality on bool is fine.
        let p = Predicate::builder(&schema)
            .eq("flag", Value::Bool(true))
            .unwrap()
            .build();
        let ev = Event::from_values(&schema, [Value::Bool(true)]).unwrap();
        assert!(p.matches(&ev));
    }

    #[test]
    fn from_tests_validates_arity() {
        let err = Predicate::from_tests(&trades(), [AttrTest::Any]).unwrap_err();
        assert!(matches!(err, Error::AttributeOutOfRange { .. }));
        let ok = Predicate::from_tests(
            &trades(),
            [
                AttrTest::Eq(Value::str("IBM")),
                AttrTest::Any,
                AttrTest::Any,
            ],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn display_with_names() {
        let p = Predicate::builder(&trades())
            .eq("issue", Value::str("IBM"))
            .unwrap()
            .lt("price", Value::dollar(120, 0))
            .unwrap()
            .build();
        assert_eq!(
            p.display_with(&trades()),
            "issue = \"IBM\" & price < 120.00"
        );
        assert_eq!(p.to_string(), "a0 = \"IBM\" & a1 < 120.00");
    }

    #[test]
    fn equality_only_detection() {
        let p = Predicate::builder(&trades())
            .eq("issue", Value::str("IBM"))
            .unwrap()
            .build();
        assert!(p.is_equality_only());
    }

    #[test]
    fn mismatched_event_arity_never_matches() {
        let other = EventSchema::builder("other")
            .attribute("x", ValueKind::Int)
            .build()
            .unwrap();
        let ev = Event::from_values(&other, [Value::Int(1)]).unwrap();
        let p = Predicate::match_all(&trades());
        assert!(!p.matches(&ev));
    }
}
