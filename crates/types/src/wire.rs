//! Compact binary codec for values, events, predicates, and subscriptions.
//!
//! The broker prototype (paper §4.2) exchanges events and subscriptions over
//! TCP; this module defines the payload encoding. All integers are
//! little-endian; strings and sequences are length-prefixed. Framing (length
//! prefix per message) is the transport's concern, not this module's.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut};

use crate::{
    AttrTest, BrokerId, ClientId, Error, Event, EventSchema, Predicate, Result, SchemaRegistry,
    SubscriberId, Subscription, SubscriptionId, Value,
};

const TAG_STR: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOLLAR: u8 = 2;
const TAG_BOOL: u8 = 3;

const TEST_ANY: u8 = 0;
const TEST_EQ: u8 = 1;
const TEST_LT: u8 = 2;
const TEST_LE: u8 = 3;
const TEST_GT: u8 = 4;
const TEST_GE: u8 = 5;
const TEST_BETWEEN: u8 = 6;

/// Every frame tag in the broker protocols, in one place.
///
/// This enum is the single source of truth for the one-byte message tags
/// that lead each frame payload. The codec in `crates/broker/src/protocol.rs`
/// binds a tag const to each variant (`const X: u8 = FrameTag::V as u8;`),
/// and `cargo xtask check` verifies that every variant is bound, encoded,
/// decoded, and dispatched — adding a variant here without wiring it
/// through fails the build gate rather than silently dropping traffic.
///
/// Tag ranges encode the direction: `0x01..=0x0f` client → broker,
/// `0x11..=0x1f` broker → client, `0x21..=0x2f` broker ↔ broker. The
/// broker's frame demultiplexer relies on these ranges.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameTag {
    /// Client session hello / resume (client → broker).
    ClientHello = 0x01,
    /// Subscription registration (client → broker).
    Subscribe = 0x02,
    /// Subscription removal (client → broker).
    Unsubscribe = 0x03,
    /// Event publication (client → broker).
    Publish = 0x04,
    /// Cumulative delivery acknowledgment (client → broker).
    Ack = 0x05,
    /// Counter-snapshot request (client → broker).
    StatsRequest = 0x06,
    /// Session accepted (broker → client).
    Welcome = 0x11,
    /// Matched-event delivery (broker → client).
    Deliver = 0x12,
    /// Subscription registered (broker → client).
    SubAck = 0x13,
    /// Subscription removed (broker → client).
    UnsubAck = 0x14,
    /// Request failed (broker → client).
    Error = 0x15,
    /// Counter snapshot (broker → client).
    Stats = 0x16,
    /// Link handshake / resync (broker ↔ broker).
    BrokerHello = 0x21,
    /// Event in flight along a spanning tree (broker ↔ broker).
    Forward = 0x22,
    /// Flooded subscription registration (broker ↔ broker).
    SubAdd = 0x23,
    /// Flooded subscription removal (broker ↔ broker).
    SubRemove = 0x24,
    /// Cumulative `Forward` acknowledgment (broker ↔ broker).
    FwdAck = 0x25,
    /// Liveness probe on an idle link (broker ↔ broker). A broker that has
    /// heard nothing from a neighbor for a heartbeat interval sends one;
    /// a silent link past the liveness timeout is torn down.
    Ping = 0x26,
    /// Liveness probe answer (broker ↔ broker). Any received frame proves
    /// liveness, but `Pong` is the guaranteed answer to a `Ping` on an
    /// otherwise idle link.
    Pong = 0x27,
    /// Flooded link-state statement: a broker-broker edge is down
    /// (broker ↔ broker). Carries the edge's normalized endpoints and a
    /// per-edge version; receivers apply it if newer, recompute the
    /// spanning forest over the surviving graph, and re-flood.
    LinkDown = 0x28,
    /// Flooded link-state statement: a previously dead edge is live again
    /// (broker ↔ broker). Same payload and apply-if-newer semantics as
    /// [`FrameTag::LinkDown`].
    LinkUp = 0x29,
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::Decode(format!(
            "truncated input: need {n} more bytes for {what}"
        )))
    } else {
        Ok(())
    }
}

/// Decode limits for attacker-controlled lengths and counts.
///
/// Every count or length read off the wire is untrusted: a peer can
/// declare `u16::MAX` elements in a 10-byte payload and an unguarded
/// `Vec::with_capacity` would allocate for all of them before the decode
/// loop hits the truncation error. The helpers here clamp declared counts
/// against the bytes actually present *before* any allocation; the
/// `wire-taint` xtask pass treats them as sanitizers.
pub mod limits {
    use crate::{Error, Result};

    /// Minimum encoded size of a [`Value`](crate::Value): a one-byte tag
    /// plus at least one payload byte (`Bool`).
    pub const MIN_VALUE_BYTES: usize = 2;

    /// Minimum encoded size of an [`AttrTest`](crate::AttrTest): a
    /// one-byte tag (`Any` has no payload).
    pub const MIN_TEST_BYTES: usize = 1;

    /// Validates a declared element count against the bytes actually
    /// remaining in the buffer: `n` elements of at least `min_bytes` each
    /// cannot outsize the payload. Returns `n` unchanged when plausible,
    /// so callers can write
    /// `Vec::with_capacity(limits::checked_count(n, ..)?)`.
    ///
    /// # Errors
    ///
    /// [`Error::Decode`] when the declared count cannot fit.
    pub fn checked_count(
        n: usize,
        remaining: usize,
        min_bytes: usize,
        what: &str,
    ) -> Result<usize> {
        if n.saturating_mul(min_bytes) > remaining {
            Err(Error::Decode(format!(
                "declared count {n} for {what} exceeds the {remaining} payload bytes present"
            )))
        } else {
            Ok(n)
        }
    }
}

/// Encodes a string as `u32` length + UTF-8 bytes.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Decodes a string written by [`put_str`].
///
/// # Errors
///
/// [`Error::Decode`] on truncation or invalid UTF-8.
pub fn get_str(buf: &mut impl Buf) -> Result<String> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, "string bytes")?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| Error::Decode(format!("invalid UTF-8 string: {e}")))
}

/// Encodes a [`Value`] as a one-byte tag plus payload.
pub fn put_value(buf: &mut impl BufMut, value: &Value) {
    match value {
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_str(buf, s);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Dollar(c) => {
            buf.put_u8(TAG_DOLLAR);
            buf.put_i64_le(*c);
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
    }
}

/// Decodes a [`Value`] written by [`put_value`].
///
/// # Errors
///
/// [`Error::Decode`] on truncation or an unknown tag.
pub fn get_value(buf: &mut impl Buf) -> Result<Value> {
    need(buf, 1, "value tag")?;
    match buf.get_u8() {
        TAG_STR => Ok(Value::Str(get_str(buf)?.into())),
        TAG_INT => {
            need(buf, 8, "integer value")?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_DOLLAR => {
            need(buf, 8, "dollar value")?;
            Ok(Value::Dollar(buf.get_i64_le()))
        }
        TAG_BOOL => {
            need(buf, 1, "boolean value")?;
            match buf.get_u8() {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                other => Err(Error::Decode(format!("invalid boolean byte {other}"))),
            }
        }
        tag => Err(Error::Decode(format!("unknown value tag {tag}"))),
    }
}

/// Process-wide count of [`put_event`] calls.
///
/// The broker's encode-once invariant — an event fanned out to N links is
/// serialized exactly once — is asserted in tests by sampling this counter
/// around a publish. It has no other consumer; a relaxed atomic keeps the
/// hot path uncontended.
static EVENT_ENCODES: AtomicU64 = AtomicU64::new(0);

/// Returns the number of times [`put_event`] has run in this process.
#[must_use]
pub fn event_encode_count() -> u64 {
    EVENT_ENCODES.load(Ordering::Relaxed)
}

/// Encodes an [`Event`] as its schema id plus the value tuple.
pub fn put_event(buf: &mut impl BufMut, event: &Event) {
    EVENT_ENCODES.fetch_add(1, Ordering::Relaxed);
    buf.put_u32_le(event.schema().id().raw());
    buf.put_u16_le(event.values().len() as u16);
    for v in event.values() {
        put_value(buf, v);
    }
}

/// Decodes an [`Event`] written by [`put_event`], resolving its schema in
/// `registry` and validating value kinds.
///
/// # Errors
///
/// [`Error::Decode`] on truncation or an unregistered schema id, plus any
/// schema-validation error from [`Event::from_values`].
pub fn get_event(buf: &mut impl Buf, registry: &SchemaRegistry) -> Result<Event> {
    need(buf, 6, "event header")?;
    let schema_id = crate::SchemaId::new(buf.get_u32_le());
    let n = limits::checked_count(
        buf.get_u16_le() as usize,
        buf.remaining(),
        limits::MIN_VALUE_BYTES,
        "event values",
    )?;
    let schema = registry
        .get(schema_id)
        .ok_or_else(|| Error::Decode(format!("unknown schema id {schema_id}")))?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(buf)?);
    }
    Event::from_values(schema, values)
}

/// Encodes an [`AttrTest`].
pub fn put_attr_test(buf: &mut impl BufMut, test: &AttrTest) {
    match test {
        AttrTest::Any => buf.put_u8(TEST_ANY),
        AttrTest::Eq(v) => {
            buf.put_u8(TEST_EQ);
            put_value(buf, v);
        }
        AttrTest::Lt(v) => {
            buf.put_u8(TEST_LT);
            put_value(buf, v);
        }
        AttrTest::Le(v) => {
            buf.put_u8(TEST_LE);
            put_value(buf, v);
        }
        AttrTest::Gt(v) => {
            buf.put_u8(TEST_GT);
            put_value(buf, v);
        }
        AttrTest::Ge(v) => {
            buf.put_u8(TEST_GE);
            put_value(buf, v);
        }
        AttrTest::Between(lo, hi) => {
            buf.put_u8(TEST_BETWEEN);
            put_value(buf, lo);
            put_value(buf, hi);
        }
    }
}

/// Decodes an [`AttrTest`] written by [`put_attr_test`].
///
/// # Errors
///
/// [`Error::Decode`] on truncation or an unknown tag.
pub fn get_attr_test(buf: &mut impl Buf) -> Result<AttrTest> {
    need(buf, 1, "test tag")?;
    match buf.get_u8() {
        TEST_ANY => Ok(AttrTest::Any),
        TEST_EQ => Ok(AttrTest::Eq(get_value(buf)?)),
        TEST_LT => Ok(AttrTest::Lt(get_value(buf)?)),
        TEST_LE => Ok(AttrTest::Le(get_value(buf)?)),
        TEST_GT => Ok(AttrTest::Gt(get_value(buf)?)),
        TEST_GE => Ok(AttrTest::Ge(get_value(buf)?)),
        TEST_BETWEEN => Ok(AttrTest::Between(get_value(buf)?, get_value(buf)?)),
        tag => Err(Error::Decode(format!("unknown test tag {tag}"))),
    }
}

/// Encodes a [`Predicate`] as its test list.
pub fn put_predicate(buf: &mut impl BufMut, predicate: &Predicate) {
    buf.put_u16_le(predicate.tests().len() as u16);
    for t in predicate.tests() {
        put_attr_test(buf, t);
    }
}

/// Decodes a [`Predicate`] written by [`put_predicate`], validating it
/// against `schema`.
///
/// # Errors
///
/// [`Error::Decode`] on truncation, plus validation errors from
/// [`Predicate::from_tests`].
pub fn get_predicate(buf: &mut impl Buf, schema: &EventSchema) -> Result<Predicate> {
    need(buf, 2, "predicate length")?;
    let n = limits::checked_count(
        buf.get_u16_le() as usize,
        buf.remaining(),
        limits::MIN_TEST_BYTES,
        "predicate tests",
    )?;
    let mut tests = Vec::with_capacity(n);
    for _ in 0..n {
        tests.push(get_attr_test(buf)?);
    }
    Predicate::from_tests(schema, tests)
}

/// Encodes a [`Subscription`] (id, subscriber, predicate).
pub fn put_subscription(buf: &mut impl BufMut, sub: &Subscription) {
    buf.put_u32_le(sub.id().raw());
    buf.put_u32_le(sub.subscriber().broker.raw());
    buf.put_u32_le(sub.subscriber().client.raw());
    put_predicate(buf, sub.predicate());
}

/// Decodes a [`Subscription`] written by [`put_subscription`].
///
/// # Errors
///
/// See [`get_predicate`].
pub fn get_subscription(buf: &mut impl Buf, schema: &EventSchema) -> Result<Subscription> {
    need(buf, 12, "subscription header")?;
    let id = SubscriptionId::new(buf.get_u32_le());
    let broker = BrokerId::new(buf.get_u32_le());
    let client = ClientId::new(buf.get_u32_le());
    let predicate = get_predicate(buf, schema)?;
    Ok(Subscription::new(
        id,
        SubscriberId::new(broker, client),
        predicate,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValueKind;
    use bytes::BytesMut;

    fn trades() -> EventSchema {
        EventSchema::builder("trades")
            .attribute("issue", ValueKind::Str)
            .attribute("price", ValueKind::Dollar)
            .attribute("volume", ValueKind::Int)
            .attribute("urgent", ValueKind::Bool)
            .build()
            .unwrap()
    }

    fn registry() -> SchemaRegistry {
        let mut r = SchemaRegistry::new();
        r.register(trades()).unwrap();
        r
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::str("IBM"),
            Value::str(""),
            Value::str("héllo"),
            Value::Int(i64::MIN),
            Value::Int(0),
            Value::Dollar(-11950),
            Value::Bool(true),
            Value::Bool(false),
        ] {
            let mut buf = BytesMut::new();
            put_value(&mut buf, &v);
            let mut rd = buf.freeze();
            assert_eq!(get_value(&mut rd).unwrap(), v);
            assert_eq!(rd.remaining(), 0);
        }
    }

    #[test]
    fn event_roundtrip() {
        let reg = registry();
        let schema = reg.get_by_name("trades").unwrap();
        let ev = Event::from_values(
            schema,
            [
                Value::str("IBM"),
                Value::Dollar(11950),
                Value::Int(3000),
                Value::Bool(false),
            ],
        )
        .unwrap();
        let mut buf = BytesMut::new();
        put_event(&mut buf, &ev);
        let mut rd = buf.freeze();
        let back = get_event(&mut rd, &reg).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn event_with_unknown_schema_fails() {
        let reg = registry();
        let mut buf = BytesMut::new();
        buf.put_u32_le(99);
        buf.put_u16_le(0);
        let err = get_event(&mut buf.freeze(), &reg).unwrap_err();
        assert!(matches!(err, Error::Decode(_)));
    }

    #[test]
    fn attr_test_roundtrip() {
        for t in [
            AttrTest::Any,
            AttrTest::Eq(Value::str("IBM")),
            AttrTest::Lt(Value::Dollar(12000)),
            AttrTest::Le(Value::Int(5)),
            AttrTest::Gt(Value::Int(1000)),
            AttrTest::Ge(Value::Dollar(1)),
            AttrTest::Between(Value::Int(1), Value::Int(9)),
        ] {
            let mut buf = BytesMut::new();
            put_attr_test(&mut buf, &t);
            assert_eq!(get_attr_test(&mut buf.freeze()).unwrap(), t);
        }
    }

    #[test]
    fn predicate_and_subscription_roundtrip() {
        let schema = trades();
        let pred = Predicate::builder(&schema)
            .eq("issue", Value::str("IBM"))
            .unwrap()
            .lt("price", Value::dollar(120, 0))
            .unwrap()
            .gt("volume", Value::Int(1000))
            .unwrap()
            .build();
        let sub = Subscription::new(
            SubscriptionId::new(7),
            SubscriberId::new(BrokerId::new(3), ClientId::new(1)),
            pred.clone(),
        );
        let mut buf = BytesMut::new();
        put_subscription(&mut buf, &sub);
        let back = get_subscription(&mut buf.freeze(), &schema).unwrap();
        assert_eq!(back, sub);
        assert_eq!(back.predicate(), &pred);
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let schema = trades();
        let mut buf = BytesMut::new();
        let pred = Predicate::match_all(&schema);
        put_predicate(&mut buf, &pred);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(
                get_predicate(&mut partial, &schema).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn garbage_tags_error_cleanly() {
        let mut buf = BytesMut::new();
        buf.put_u8(200);
        assert!(get_value(&mut buf.freeze()).is_err());

        let mut buf = BytesMut::new();
        buf.put_u8(TAG_BOOL);
        buf.put_u8(9);
        assert!(get_value(&mut buf.freeze()).is_err());

        let mut buf = BytesMut::new();
        buf.put_u8(77);
        assert!(get_attr_test(&mut buf.freeze()).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_STR);
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert!(get_value(&mut buf.freeze()).is_err());
    }

    #[test]
    fn oversized_declared_value_count_is_rejected_before_allocating() {
        // An attacker declares u16::MAX event values but sends a 2-byte
        // payload: the decoder must reject the count against the bytes
        // actually present instead of reserving capacity for 65535 values.
        let reg = registry();
        let mut buf = BytesMut::new();
        buf.put_u32_le(0); // schema id (registered)
        buf.put_u16_le(u16::MAX);
        buf.put_u8(TAG_BOOL);
        buf.put_u8(1);
        let err = get_event(&mut buf.freeze(), &reg).unwrap_err();
        assert!(
            err.to_string().contains("declared count"),
            "want a count-vs-payload rejection, got: {err}"
        );
    }

    #[test]
    fn oversized_declared_test_count_is_rejected_before_allocating() {
        let schema = trades();
        let mut buf = BytesMut::new();
        buf.put_u16_le(u16::MAX);
        buf.put_u8(TEST_ANY);
        let err = get_predicate(&mut buf.freeze(), &schema).unwrap_err();
        assert!(
            err.to_string().contains("declared count"),
            "want a count-vs-payload rejection, got: {err}"
        );
    }

    #[test]
    fn plausible_declared_counts_still_decode() {
        // checked_count passes counts the payload can actually hold:
        // a TEST_ANY-only predicate is 1 byte per test, the minimum size.
        let schema = trades();
        let mut buf = BytesMut::new();
        buf.put_u16_le(4);
        for _ in 0..4 {
            buf.put_u8(TEST_ANY);
        }
        let pred = get_predicate(&mut buf.freeze(), &schema).unwrap();
        assert_eq!(pred.tests().len(), 4);
    }

    #[test]
    fn decoded_predicate_is_schema_checked() {
        // Encode a predicate with a wrong-kind operand by hand; decoding
        // against the schema must reject it.
        let schema = trades();
        let mut buf = BytesMut::new();
        buf.put_u16_le(4);
        put_attr_test(&mut buf, &AttrTest::Eq(Value::Int(5))); // issue is Str
        put_attr_test(&mut buf, &AttrTest::Any);
        put_attr_test(&mut buf, &AttrTest::Any);
        put_attr_test(&mut buf, &AttrTest::Any);
        let err = get_predicate(&mut buf.freeze(), &schema).unwrap_err();
        assert!(matches!(err, Error::SchemaMismatch { .. }));
    }
}
