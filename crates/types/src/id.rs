//! Strongly-typed identifiers used throughout the workspace.
//!
//! Every entity in the broker network — brokers, links, clients, schemas,
//! subscriptions, events — is addressed by a small-integer id wrapped in a
//! newtype so that the compiler keeps the different id spaces apart
//! (guideline C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index behind this id.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, for indexing into vectors.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies a broker node in the network.
    BrokerId,
    "B"
);
define_id!(
    /// Identifies a client (publisher or subscriber) attached to a broker.
    ClientId,
    "C"
);
define_id!(
    /// Identifies an outgoing link of a *specific* broker.
    ///
    /// Link ids are broker-local: `LinkId(0)` of broker 3 and `LinkId(0)` of
    /// broker 7 are unrelated. A link leads either to a neighboring broker or
    /// to a locally attached client.
    LinkId,
    "L"
);
define_id!(
    /// Identifies an event schema (information space).
    SchemaId,
    "S"
);
define_id!(
    /// Identifies a subscription within the system.
    SubscriptionId,
    "sub"
);
define_id!(
    /// Identifies a published event (assigned by the publishing broker).
    EventId,
    "E"
);

/// Identifies the party that should receive matched events.
///
/// In the single-broker matching algorithm of §2 the subscriber is a client;
/// in the distributed protocol of §3 each broker views remote subscribers
/// through the client's *home broker*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriberId {
    /// Home broker of the subscribing client.
    pub broker: BrokerId,
    /// The subscribing client.
    pub client: ClientId,
}

impl SubscriberId {
    /// Creates a subscriber id from a home broker and client.
    pub const fn new(broker: BrokerId, client: ClientId) -> Self {
        Self { broker, client }
    }
}

impl fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.broker, self.client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_forms() {
        assert_eq!(BrokerId::new(3).to_string(), "B3");
        assert_eq!(ClientId::new(0).to_string(), "C0");
        assert_eq!(LinkId::new(7).to_string(), "L7");
        assert_eq!(SchemaId::new(1).to_string(), "S1");
        assert_eq!(SubscriptionId::new(42).to_string(), "sub42");
        assert_eq!(EventId::new(9).to_string(), "E9");
        assert_eq!(
            SubscriberId::new(BrokerId::new(2), ClientId::new(5)).to_string(),
            "B2/C5"
        );
    }

    #[test]
    fn roundtrip_raw() {
        let id = LinkId::new(11);
        assert_eq!(id.raw(), 11);
        assert_eq!(id.index(), 11);
        assert_eq!(LinkId::from(u32::from(id)), id);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(BrokerId::new(1));
        set.insert(BrokerId::new(1));
        set.insert(BrokerId::new(2));
        assert_eq!(set.len(), 2);
        assert!(BrokerId::new(1) < BrokerId::new(2));
    }

    #[test]
    fn subscriber_id_ordering_groups_by_broker() {
        let a = SubscriberId::new(BrokerId::new(1), ClientId::new(9));
        let b = SubscriberId::new(BrokerId::new(2), ClientId::new(0));
        assert!(a < b);
    }
}
