//! Typed attribute values.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// The type of an attribute, as declared in an [`EventSchema`].
///
/// [`EventSchema`]: crate::EventSchema
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKind {
    /// UTF-8 string, e.g. a stock issue name.
    Str,
    /// Signed 64-bit integer, e.g. a trade volume.
    Int,
    /// Fixed-point currency amount stored in cents, e.g. a price.
    ///
    /// The paper's example schema uses `price: dollar`; a fixed-point
    /// representation keeps values totally ordered and hashable (no NaN),
    /// which the parallel search tree relies on.
    Dollar,
    /// Boolean flag.
    Bool,
}

impl ValueKind {
    /// Returns the lowercase keyword used in schema declarations.
    pub const fn keyword(self) -> &'static str {
        match self {
            ValueKind::Str => "string",
            ValueKind::Int => "integer",
            ValueKind::Dollar => "dollar",
            ValueKind::Bool => "boolean",
        }
    }

    /// Parses a schema keyword (`"string"`, `"integer"`, `"dollar"`,
    /// `"boolean"`) into a kind.
    pub fn from_keyword(word: &str) -> Option<Self> {
        match word {
            "string" | "str" => Some(ValueKind::Str),
            "integer" | "int" => Some(ValueKind::Int),
            "dollar" => Some(ValueKind::Dollar),
            "boolean" | "bool" => Some(ValueKind::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A typed attribute value carried by an [`Event`] or tested by a
/// [`Predicate`].
///
/// Values of different kinds never compare equal; ordering across kinds is
/// total (by kind, then by payload) so values can key ordered collections,
/// but predicates only ever compare same-kind values.
///
/// [`Event`]: crate::Event
/// [`Predicate`]: crate::Predicate
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A string value. `Arc<str>` keeps events cheap to clone as they fan
    /// out across links.
    Str(Arc<str>),
    /// An integer value.
    Int(i64),
    /// A currency amount in cents.
    Dollar(i64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Creates a dollar value from whole dollars and cents.
    ///
    /// # Panics
    ///
    /// Panics if `cents >= 100`.
    pub fn dollar(dollars: i64, cents: u8) -> Self {
        assert!(cents < 100, "cents must be < 100, got {cents}");
        let sign = if dollars < 0 { -1 } else { 1 };
        Value::Dollar(dollars * 100 + sign * i64::from(cents))
    }

    /// Creates a dollar value directly from a total number of cents.
    pub const fn dollar_cents(cents: i64) -> Self {
        Value::Dollar(cents)
    }

    /// Returns the kind of this value.
    pub const fn kind(&self) -> ValueKind {
        match self {
            Value::Str(_) => ValueKind::Str,
            Value::Int(_) => ValueKind::Int,
            Value::Dollar(_) => ValueKind::Dollar,
            Value::Bool(_) => ValueKind::Bool,
        }
    }

    /// Returns the string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the amount in cents, if this is a dollar value.
    pub fn as_dollar_cents(&self) -> Option<i64> {
        match self {
            Value::Dollar(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value in the predicate-language syntax, e.g. `"IBM"`,
    /// `120.00`, `1000`, `true`.
    pub fn to_literal(&self) -> Cow<'static, str> {
        match self {
            Value::Str(s) => Cow::Owned(format!("{:?}", s.as_ref())),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Dollar(c) => {
                let sign = if *c < 0 { "-" } else { "" };
                let abs = c.abs();
                Cow::Owned(format!("{sign}{}.{:02}", abs / 100, abs % 100))
            }
            Value::Bool(true) => Cow::Borrowed("true"),
            Value::Bool(false) => Cow::Borrowed("false"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_literal())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_keywords() {
        for kind in [
            ValueKind::Str,
            ValueKind::Int,
            ValueKind::Dollar,
            ValueKind::Bool,
        ] {
            assert_eq!(ValueKind::from_keyword(kind.keyword()), Some(kind));
        }
        assert_eq!(ValueKind::from_keyword("float"), None);
    }

    #[test]
    fn dollar_construction() {
        assert_eq!(Value::dollar(119, 50), Value::Dollar(11950));
        assert_eq!(Value::dollar(-3, 25), Value::Dollar(-325));
        assert_eq!(Value::dollar(0, 99), Value::Dollar(99));
    }

    #[test]
    #[should_panic(expected = "cents must be < 100")]
    fn dollar_rejects_overflowing_cents() {
        let _ = Value::dollar(1, 100);
    }

    #[test]
    fn literals() {
        assert_eq!(Value::str("IBM").to_literal(), "\"IBM\"");
        assert_eq!(Value::Int(1000).to_literal(), "1000");
        assert_eq!(Value::dollar(120, 0).to_literal(), "120.00");
        assert_eq!(Value::dollar(-3, 25).to_literal(), "-3.25");
        assert_eq!(Value::Bool(true).to_literal(), "true");
    }

    #[test]
    fn cross_kind_values_never_equal() {
        assert_ne!(Value::Int(0), Value::Dollar(0));
        assert_ne!(Value::Bool(false), Value::Int(0));
    }

    #[test]
    fn ordering_within_kind_is_numeric() {
        assert!(Value::Int(2) < Value::Int(10));
        assert!(Value::Dollar(199) < Value::Dollar(200));
        assert!(Value::str("AAPL") < Value::str("IBM"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Dollar(5).as_dollar_cents(), Some(5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(String::from("hi")), Value::str("hi"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
