//! Subscriptions: a predicate registered by a subscriber.

use std::fmt;

use crate::{Predicate, SubscriberId, SubscriptionId};

/// A registered subscription: *who* wants events satisfying *which*
/// predicate.
///
/// A client "with potentially multiple subscriptions" (§4.1) registers one
/// `Subscription` per predicate; the matching layer treats them
/// independently.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Subscription {
    id: SubscriptionId,
    subscriber: SubscriberId,
    predicate: Predicate,
}

impl Subscription {
    /// Creates a subscription.
    pub fn new(id: SubscriptionId, subscriber: SubscriberId, predicate: Predicate) -> Self {
        Self {
            id,
            subscriber,
            predicate,
        }
    }

    /// The subscription's id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// The subscribing party.
    pub fn subscriber(&self) -> SubscriberId {
        self.subscriber
    }

    /// The content-based predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Consumes the subscription, returning its predicate.
    pub fn into_predicate(self) -> Predicate {
        self.predicate
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by {}: {}", self.id, self.subscriber, self.predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BrokerId, ClientId, EventSchema, Value, ValueKind};

    #[test]
    fn accessors_and_display() {
        let schema = EventSchema::builder("s")
            .attribute("a", ValueKind::Int)
            .build()
            .unwrap();
        let pred = Predicate::builder(&schema)
            .eq("a", Value::Int(1))
            .unwrap()
            .build();
        let sub = Subscription::new(
            SubscriptionId::new(7),
            SubscriberId::new(BrokerId::new(2), ClientId::new(3)),
            pred.clone(),
        );
        assert_eq!(sub.id(), SubscriptionId::new(7));
        assert_eq!(sub.subscriber().broker, BrokerId::new(2));
        assert_eq!(sub.predicate(), &pred);
        assert_eq!(sub.to_string(), "sub7 by B2/C3: a0 = 1");
        assert_eq!(sub.into_predicate(), pred);
    }
}
