//! Property-based tests for the data model: trit algebra laws, codec
//! roundtrips, and decoder robustness against arbitrary bytes.

use bytes::BytesMut;
use linkcast_types::{
    wire, AttrTest, BrokerId, ClientId, Event, EventSchema, Predicate, SchemaRegistry,
    SubscriberId, Subscription, SubscriptionId, Trit, TritVec, Value, ValueKind,
};
use proptest::prelude::*;

fn trit_strategy() -> impl Strategy<Value = Trit> {
    prop_oneof![Just(Trit::No), Just(Trit::Maybe), Just(Trit::Yes)]
}

fn tritvec_strategy(max_len: usize) -> impl Strategy<Value = TritVec> {
    proptest::collection::vec(trit_strategy(), 0..max_len).prop_map(|v| v.into_iter().collect())
}

fn paired_tritvecs(max_len: usize) -> impl Strategy<Value = (TritVec, TritVec)> {
    (0..max_len).prop_flat_map(|len| {
        (
            proptest::collection::vec(trit_strategy(), len),
            proptest::collection::vec(trit_strategy(), len),
        )
            .prop_map(|(a, b)| {
                (
                    a.into_iter().collect::<TritVec>(),
                    b.into_iter().collect::<TritVec>(),
                )
            })
    })
}

proptest! {
    /// The vectorized (bit-packed, word-parallel) operators agree with the
    /// scalar Fig. 4 tables on every lane.
    #[test]
    fn vector_ops_match_scalar_ops((a, b) in paired_tritvecs(130)) {
        let alt = a.alternative(&b);
        let par = a.parallel(&b);
        let refi = a.refine(&b);
        let abs = a.absorb_yes(&b);
        for i in 0..a.len() {
            let (x, y) = (a.get(i), b.get(i));
            prop_assert_eq!(alt.get(i), x.alternative(y));
            prop_assert_eq!(par.get(i), x.parallel(y));
            prop_assert_eq!(refi.get(i), if x == Trit::Maybe { y } else { x });
            prop_assert_eq!(
                abs.get(i),
                if x == Trit::Maybe && y == Trit::Yes { Trit::Yes } else { x }
            );
        }
    }

    /// Algebraic laws the annotation propagation relies on.
    #[test]
    fn trit_algebra_laws((a, b) in paired_tritvecs(70), c in tritvec_strategy(70)) {
        // Commutativity.
        prop_assert_eq!(a.alternative(&b), b.alternative(&a));
        prop_assert_eq!(a.parallel(&b), b.parallel(&a));
        // Idempotence.
        prop_assert_eq!(a.alternative(&a), a.clone());
        prop_assert_eq!(a.parallel(&a), a.clone());
        // Associativity (on equal-length triples only).
        if c.len() == a.len() {
            prop_assert_eq!(
                a.alternative(&b).alternative(&c),
                a.alternative(&b.alternative(&c))
            );
            prop_assert_eq!(a.parallel(&b).parallel(&c), a.parallel(&b.parallel(&c)));
        }
        // Refinement never leaves a Maybe where the annotation is decided.
        let refined = a.refine(&b);
        for i in 0..a.len() {
            if refined.get(i) == Trit::Maybe {
                prop_assert_eq!(b.get(i), Trit::Maybe);
                prop_assert_eq!(a.get(i), Trit::Maybe);
            }
        }
        // maybes_to_no produces a decided mask.
        prop_assert!(!a.maybes_to_no().has_maybe());
        // Counting is consistent with iteration.
        prop_assert_eq!(a.count_yes(), a.iter().filter(|t| *t == Trit::Yes).count());
        prop_assert_eq!(a.count_maybe(), a.iter().filter(|t| *t == Trit::Maybe).count());
    }

    /// Parse/display roundtrip for the figure notation.
    #[test]
    fn tritvec_display_parse_roundtrip(v in tritvec_strategy(100)) {
        let text = v.to_string();
        let back: TritVec = text.parse().unwrap();
        prop_assert_eq!(back, v);
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Dollar),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn kinded_value(kind: ValueKind) -> BoxedStrategy<Value> {
    match kind {
        ValueKind::Str => "[a-zA-Z0-9]{0,8}".prop_map(Value::str).boxed(),
        ValueKind::Int => any::<i64>().prop_map(Value::Int).boxed(),
        ValueKind::Dollar => any::<i64>().prop_map(Value::Dollar).boxed(),
        ValueKind::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
    }
}

fn test_schema() -> EventSchema {
    EventSchema::builder("prop")
        .attribute("s", ValueKind::Str)
        .attribute("i", ValueKind::Int)
        .attribute("d", ValueKind::Dollar)
        .attribute("b", ValueKind::Bool)
        .build()
        .unwrap()
}

fn attr_test_strategy(kind: ValueKind) -> BoxedStrategy<AttrTest> {
    let v = kinded_value(kind);
    if kind == ValueKind::Bool {
        prop_oneof![Just(AttrTest::Any), v.prop_map(AttrTest::Eq),].boxed()
    } else {
        let v2 = kinded_value(kind);
        prop_oneof![
            Just(AttrTest::Any),
            v.clone().prop_map(AttrTest::Eq),
            v.clone().prop_map(AttrTest::Lt),
            v.clone().prop_map(AttrTest::Le),
            v.clone().prop_map(AttrTest::Gt),
            v.clone().prop_map(AttrTest::Ge),
            (v, v2).prop_map(|(a, b)| AttrTest::Between(a, b)),
        ]
        .boxed()
    }
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    (
        attr_test_strategy(ValueKind::Str),
        attr_test_strategy(ValueKind::Int),
        attr_test_strategy(ValueKind::Dollar),
        attr_test_strategy(ValueKind::Bool),
    )
        .prop_map(|(a, b, c, d)| Predicate::from_tests(&test_schema(), [a, b, c, d]).unwrap())
}

proptest! {
    /// Values survive the wire codec byte-for-byte.
    #[test]
    fn value_wire_roundtrip(v in value_strategy()) {
        let mut buf = BytesMut::new();
        wire::put_value(&mut buf, &v);
        let mut rd = buf.freeze();
        prop_assert_eq!(wire::get_value(&mut rd).unwrap(), v);
        prop_assert_eq!(rd.len(), 0, "decoder must consume exactly what was encoded");
    }

    /// Events survive the wire codec through a registry.
    #[test]
    fn event_wire_roundtrip(
        s in kinded_value(ValueKind::Str),
        i in kinded_value(ValueKind::Int),
        d in kinded_value(ValueKind::Dollar),
        b in kinded_value(ValueKind::Bool),
    ) {
        let mut registry = SchemaRegistry::new();
        registry.register(test_schema()).unwrap();
        let schema = registry.get_by_name("prop").unwrap();
        let event = Event::from_values(schema, [s, i, d, b]).unwrap();
        let mut buf = BytesMut::new();
        wire::put_event(&mut buf, &event);
        let back = wire::get_event(&mut buf.freeze(), &registry).unwrap();
        prop_assert_eq!(back, event);
    }

    /// Subscriptions (with arbitrary predicates) survive the wire codec.
    #[test]
    fn subscription_wire_roundtrip(p in predicate_strategy(), id in any::<u32>()) {
        let schema = test_schema();
        let sub = Subscription::new(
            SubscriptionId::new(id),
            SubscriberId::new(BrokerId::new(1), ClientId::new(2)),
            p,
        );
        let mut buf = BytesMut::new();
        wire::put_subscription(&mut buf, &sub);
        let back = wire::get_subscription(&mut buf.freeze(), &schema).unwrap();
        prop_assert_eq!(back, sub);
    }

    /// The decoders never panic on arbitrary input — they return errors.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut registry = SchemaRegistry::new();
        registry.register(test_schema()).unwrap();
        let schema = registry.get_by_name("prop").unwrap().clone();
        let _ = wire::get_value(&mut bytes::Bytes::from(bytes.clone()));
        let _ = wire::get_event(&mut bytes::Bytes::from(bytes.clone()), &registry);
        let _ = wire::get_predicate(&mut bytes::Bytes::from(bytes.clone()), &schema);
        let _ = wire::get_subscription(&mut bytes::Bytes::from(bytes), &schema);
    }

    /// The predicate parser never panics on arbitrary strings.
    #[test]
    fn parser_never_panics(input in "\\PC{0,64}") {
        let _ = linkcast_types::parse_predicate(&test_schema(), &input);
    }

    /// Predicates render to text that parses back to the same predicate
    /// (for the operator set the grammar covers).
    #[test]
    fn predicate_display_parse_roundtrip(p in predicate_strategy()) {
        let schema = test_schema();
        // The all-wildcard predicate renders as the keyword `true`, which
        // is a display convention, not grammar; skip it.
        prop_assume!(p.non_wildcard_count() > 0);
        let text = p.display_with(&schema);
        // `Between` renders with the `between ... and ...` form the parser
        // accepts; all other forms are canonical too.
        let parsed = linkcast_types::parse_predicate(&schema, &text);
        // Dollar literal rendering is exact only to two decimals, which is
        // also the parser's precision, so this must roundtrip.
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed, p);
    }
}
