//! In-crate tests for the link-matching engine and routers.

use linkcast_matching::{MatchStats, OrderPolicy, PstOptions};
use linkcast_types::{
    AttrTest, BrokerId, ClientId, Event, EventSchema, Predicate, Trit, Value, ValueKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    ContentRouter, EventRouter, FloodingRouter, LinkMatchEngine, LinkSpace, MatchFirstRouter,
    NetworkBuilder, RoutingFabric,
};

/// Three integer attributes with domain 0..3.
fn small_schema() -> EventSchema {
    let mut b = EventSchema::builder("small");
    for name in ["x", "y", "z"] {
        b = b.attribute_with_domain(name, ValueKind::Int, (0..3).map(Value::Int));
    }
    b.build().unwrap()
}

fn int_event(schema: &EventSchema, values: &[i64]) -> Event {
    Event::from_values(schema, values.iter().map(|v| Value::Int(*v))).unwrap()
}

fn int_predicate(schema: &EventSchema, tests: &[Option<i64>]) -> Predicate {
    Predicate::from_tests(
        schema,
        tests.iter().map(|t| match t {
            Some(v) => AttrTest::Eq(Value::Int(*v)),
            None => AttrTest::Any,
        }),
    )
    .unwrap()
}

/// B0 - B1 - B2 line with one client per broker; publishers at B0.
fn line_fabric() -> (std::sync::Arc<RoutingFabric>, Vec<BrokerId>, Vec<ClientId>) {
    let mut b = NetworkBuilder::new();
    let brokers = b.add_brokers(3);
    b.connect(brokers[0], brokers[1], 10.0).unwrap();
    b.connect(brokers[1], brokers[2], 10.0).unwrap();
    let clients = brokers
        .iter()
        .map(|&id| b.add_client(id).unwrap())
        .collect();
    let fabric = RoutingFabric::new_all_roots(b.build().unwrap()).unwrap();
    (fabric, brokers, clients)
}

#[test]
fn engine_routes_by_subscription_location() {
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let mut router =
        ContentRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    // c2 (at B2) wants x=1; c0 (at B0) wants x=2; c1 (at B1) wants anything.
    router
        .subscribe(clients[2], int_predicate(&schema, &[Some(1), None, None]))
        .unwrap();
    router
        .subscribe(clients[0], int_predicate(&schema, &[Some(2), None, None]))
        .unwrap();
    router
        .subscribe(clients[1], int_predicate(&schema, &[None, None, None]))
        .unwrap();

    let d = router
        .publish(brokers[0], &int_event(&schema, &[1, 0, 0]))
        .unwrap();
    assert_eq!(d.recipients, vec![clients[1], clients[2]]);
    // B0→B1 and B1→B2: exactly two broker messages, one per link.
    assert_eq!(d.broker_messages, 2);
    assert_eq!(d.client_messages, 2);
    assert_eq!(d.max_hops, 2);

    let d = router
        .publish(brokers[0], &int_event(&schema, &[2, 0, 0]))
        .unwrap();
    assert_eq!(d.recipients, vec![clients[0], clients[1]]);
    // x=2 interests only B0's and B1's clients: the B1→B2 link stays idle.
    assert_eq!(d.broker_messages, 1);
}

#[test]
fn engine_annotations_distinguish_links() {
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let space = LinkSpace::build(fabric.network(), fabric.forest(), brokers[0]);
    assert_eq!(space.class_count(), 1);
    let mut engine =
        LinkMatchEngine::new(brokers[0], schema.clone(), PstOptions::default(), space).unwrap();
    let sub = |id: u32, client: ClientId, tests: &[Option<i64>]| {
        let home = fabric.network().home_broker(client).unwrap();
        linkcast_types::Subscription::new(
            linkcast_types::SubscriptionId::new(id),
            linkcast_types::SubscriberId::new(home, client),
            int_predicate(&schema, tests),
        )
    };
    engine
        .subscribe(sub(0, clients[2], &[Some(1), None, None]))
        .unwrap();
    engine
        .subscribe(sub(1, clients[0], &[Some(1), None, None]))
        .unwrap();

    // B0's links: [broker B1, client c0]. The root annotation must be
    // Maybe/Maybe: whether either link gets the event depends on x.
    let (_, root) = engine.pst().roots().next().unwrap();
    let ann = engine.annotation(root).unwrap();
    assert_eq!(ann.get(0), Trit::Maybe);
    assert_eq!(ann.get(1), Trit::Maybe);

    // After the x=1 test the annotation (of the x=1 child) is Yes/Yes.
    let child = engine.pst().node(root).eq_child(&Value::Int(1)).unwrap();
    let ann = engine.annotation(child).unwrap();
    assert_eq!(ann.get(0), Trit::Yes);
    assert_eq!(ann.get(1), Trit::Yes);
}

#[test]
fn exhaustive_value_branches_stay_yes() {
    // Subscriptions cover the whole domain of x for the same remote client:
    // the root annotation must be a hard Yes on the remote link (no Maybe
    // degradation), thanks to the finite-domain exhaustiveness rule.
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let space = LinkSpace::build(fabric.network(), fabric.forest(), brokers[0]);
    let mut engine =
        LinkMatchEngine::new(brokers[0], schema.clone(), PstOptions::default(), space).unwrap();
    for v in 0..3 {
        let home = fabric.network().home_broker(clients[2]).unwrap();
        engine
            .subscribe(linkcast_types::Subscription::new(
                linkcast_types::SubscriptionId::new(v as u32),
                linkcast_types::SubscriberId::new(home, clients[2]),
                int_predicate(&schema, &[Some(v), None, None]),
            ))
            .unwrap();
    }
    let (_, root) = engine.pst().roots().next().unwrap();
    let ann = engine.annotation(root).unwrap();
    let b1_link = fabric
        .network()
        .link_to_broker(brokers[0], brokers[1])
        .unwrap();
    assert_eq!(ann.get(b1_link.index()), Trit::Yes);

    // A single matching step should suffice: the mask fully refines at the
    // root.
    let mut stats = MatchStats::new();
    let tree = fabric.tree_for(brokers[0]).unwrap();
    let links = engine.match_links(&int_event(&schema, &[0, 0, 0]), tree, &mut stats);
    assert_eq!(links, vec![b1_link]);
    assert_eq!(stats.steps, 1, "fully refined at the root");
}

#[test]
fn unsubscribe_reannotates() {
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let mut router =
        ContentRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    let id = router
        .subscribe(clients[2], int_predicate(&schema, &[Some(1), None, None]))
        .unwrap();
    let event = int_event(&schema, &[1, 0, 0]);
    assert_eq!(
        router.publish(brokers[0], &event).unwrap().recipients,
        vec![clients[2]]
    );
    assert!(router.unsubscribe(id));
    assert!(!router.unsubscribe(id));
    let d = router.publish(brokers[0], &event).unwrap();
    assert!(d.recipients.is_empty());
    assert_eq!(d.broker_messages, 0, "no traffic for no subscribers");
}

#[test]
fn publishers_at_any_broker() {
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let mut router =
        ContentRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    router
        .subscribe(clients[0], int_predicate(&schema, &[Some(1), None, None]))
        .unwrap();
    // Publishing from B2 must reach the subscriber at B0 across two hops.
    let d = router
        .publish(brokers[2], &int_event(&schema, &[1, 2, 2]))
        .unwrap();
    assert_eq!(d.recipients, vec![clients[0]]);
    assert_eq!(d.max_hops, 2);
}

/// Builds a random tree-shaped broker network with 2 clients per broker.
fn random_tree_network(
    rng: &mut StdRng,
    brokers: usize,
) -> (std::sync::Arc<RoutingFabric>, Vec<ClientId>) {
    let mut b = NetworkBuilder::new();
    let ids = b.add_brokers(brokers);
    for i in 1..brokers {
        let parent = rng.random_range(0..i);
        b.connect(ids[i], ids[parent], 1.0 + rng.random_range(0..50) as f64)
            .unwrap();
    }
    let mut clients = Vec::new();
    for &id in &ids {
        clients.extend(b.add_clients(id, 2).unwrap());
    }
    let fabric = RoutingFabric::new_all_roots(b.build().unwrap()).unwrap();
    (fabric, clients)
}

/// The golden invariant: link matching, flooding, match-first, and a naive
/// global evaluation all deliver to exactly the same clients.
#[test]
fn protocols_agree_on_random_tree_networks() {
    let mut rng = StdRng::seed_from_u64(2024);
    let schema = small_schema();
    for round in 0..8 {
        let (fabric, clients) = random_tree_network(&mut rng, 3 + round % 6);
        let options = PstOptions::default();
        let mut link = ContentRouter::new(fabric.clone(), schema.clone(), options.clone()).unwrap();
        let mut flood =
            FloodingRouter::new(fabric.clone(), schema.clone(), options.clone()).unwrap();
        let mut first = MatchFirstRouter::new(fabric.clone(), schema.clone(), options).unwrap();

        let mut oracle: Vec<(ClientId, Predicate)> = Vec::new();
        for &client in &clients {
            for _ in 0..rng.random_range(0..3) {
                let tests: Vec<Option<i64>> = (0..3)
                    .map(|_| {
                        if rng.random_bool(0.6) {
                            Some(rng.random_range(0..3))
                        } else {
                            None
                        }
                    })
                    .collect();
                let p = int_predicate(&schema, &tests);
                link.subscribe(client, p.clone()).unwrap();
                flood.subscribe(client, p.clone()).unwrap();
                first.subscribe(client, p.clone()).unwrap();
                oracle.push((client, p));
            }
        }

        for _ in 0..30 {
            let publisher =
                BrokerId::new(rng.random_range(0..fabric.network().broker_count()) as u32);
            let values: Vec<i64> = (0..3).map(|_| rng.random_range(0..3)).collect();
            let event = int_event(&schema, &values);
            let d_link = link.publish(publisher, &event).unwrap();
            let d_flood = flood.publish(publisher, &event).unwrap();
            let d_first = first.publish(publisher, &event).unwrap();

            let mut expected: Vec<ClientId> = oracle
                .iter()
                .filter(|(_, p)| p.matches(&event))
                .map(|(c, _)| *c)
                .collect();
            expected.sort_unstable();
            expected.dedup();

            assert_eq!(d_link.recipients, expected, "link matching (round {round})");
            assert_eq!(d_flood.recipients, expected, "flooding (round {round})");
            assert_eq!(d_first.recipients, expected, "match-first (round {round})");

            // At most one copy per link: never more broker messages than
            // broker links (tree edges).
            let edges = fabric.network().broker_count() as u64 - 1;
            assert!(d_link.broker_messages <= edges);
            // Flooding always uses every tree edge.
            assert_eq!(d_flood.broker_messages, edges);
            // Link matching never uses more links than flooding.
            assert!(d_link.broker_messages <= d_flood.broker_messages);
            // Link matching and flooding carry no destination lists.
            assert_eq!(d_link.payload_units, 0);
            assert_eq!(d_flood.payload_units, 0);
            // Match-first pays list overhead whenever remote delivery happens.
            if d_first.broker_messages > 0 {
                assert!(d_first.payload_units > 0);
            }
        }
    }
}

/// Virtual links: on a cyclic topology, different spanning trees route the
/// same destination over different links of a broker; the class mechanism
/// must keep delivery exact from every publisher.
#[test]
fn protocols_agree_on_cyclic_topologies() {
    let mut rng = StdRng::seed_from_u64(7);
    let schema = small_schema();
    // A ring of 6 brokers plus two chords.
    let mut b = NetworkBuilder::new();
    let ids = b.add_brokers(6);
    for i in 0..6 {
        b.connect(ids[i], ids[(i + 1) % 6], 10.0).unwrap();
    }
    b.connect(ids[0], ids[3], 15.0).unwrap();
    b.connect(ids[1], ids[4], 35.0).unwrap();
    let mut clients = Vec::new();
    for &id in &ids {
        clients.extend(b.add_clients(id, 2).unwrap());
    }
    let fabric = RoutingFabric::new_all_roots(b.build().unwrap()).unwrap();
    assert!(fabric.forest().len() > 1, "cycles yield multiple trees");

    let mut router =
        ContentRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    let mut oracle: Vec<(ClientId, Predicate)> = Vec::new();
    for &client in &clients {
        let tests: Vec<Option<i64>> = (0..3)
            .map(|_| {
                if rng.random_bool(0.5) {
                    Some(rng.random_range(0..3))
                } else {
                    None
                }
            })
            .collect();
        let p = int_predicate(&schema, &tests);
        router.subscribe(client, p.clone()).unwrap();
        oracle.push((client, p));
    }
    for publisher in fabric.network().brokers() {
        for _ in 0..10 {
            let values: Vec<i64> = (0..3).map(|_| rng.random_range(0..3)).collect();
            let event = int_event(&schema, &values);
            let d = router.publish(publisher, &event).unwrap();
            let mut expected: Vec<ClientId> = oracle
                .iter()
                .filter(|(_, p)| p.matches(&event))
                .map(|(c, _)| *c)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(d.recipients, expected, "publisher {publisher}");
        }
    }
}

#[test]
fn factoring_and_ordering_options_preserve_routing() {
    let mut rng = StdRng::seed_from_u64(77);
    let schema = small_schema();
    let (fabric, clients) = random_tree_network(&mut rng, 5);
    let configs = [
        PstOptions::default(),
        PstOptions::default().with_factoring(1),
        PstOptions::default().with_factoring(2),
        PstOptions::default()
            .with_order(OrderPolicy::Explicit(vec![2, 0, 1]))
            .with_trivial_test_elimination(true),
    ];
    let mut routers: Vec<ContentRouter> = configs
        .iter()
        .map(|o| ContentRouter::new(fabric.clone(), schema.clone(), o.clone()).unwrap())
        .collect();
    for &client in &clients {
        let tests: Vec<Option<i64>> = (0..3)
            .map(|_| {
                if rng.random_bool(0.6) {
                    Some(rng.random_range(0..3))
                } else {
                    None
                }
            })
            .collect();
        let p = int_predicate(&schema, &tests);
        for r in &mut routers {
            r.subscribe(client, p.clone()).unwrap();
        }
    }
    for _ in 0..40 {
        let publisher = BrokerId::new(rng.random_range(0..fabric.network().broker_count()) as u32);
        let values: Vec<i64> = (0..3).map(|_| rng.random_range(0..3)).collect();
        let event = int_event(&schema, &values);
        let reference = routers[0].publish(publisher, &event).unwrap();
        for (i, r) in routers.iter().enumerate().skip(1) {
            let d = r.publish(publisher, &event).unwrap();
            assert_eq!(d.recipients, reference.recipients, "config {i}");
        }
    }
}

#[test]
fn single_broker_network_degenerates_to_local_matching() {
    let schema = small_schema();
    let mut b = NetworkBuilder::new();
    let b0 = b.add_broker();
    let c0 = b.add_client(b0).unwrap();
    let c1 = b.add_client(b0).unwrap();
    let fabric = RoutingFabric::new_all_roots(b.build().unwrap()).unwrap();
    let mut router = ContentRouter::new(fabric, schema.clone(), PstOptions::default()).unwrap();
    router
        .subscribe(c0, int_predicate(&schema, &[Some(1), None, None]))
        .unwrap();
    router
        .subscribe(c1, int_predicate(&schema, &[Some(2), None, None]))
        .unwrap();
    let d = router
        .publish(BrokerId::new(0), &int_event(&schema, &[1, 0, 0]))
        .unwrap();
    assert_eq!(d.recipients, vec![c0]);
    assert_eq!(d.broker_messages, 0);
    assert_eq!(d.max_hops, 0);
    assert_eq!(router.subscription_count(), 2);
}

#[test]
fn range_subscriptions_route_correctly() {
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let mut router =
        ContentRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    let pred = Predicate::from_tests(
        &schema,
        [
            AttrTest::Ge(Value::Int(1)),
            AttrTest::Any,
            AttrTest::Between(Value::Int(0), Value::Int(1)),
        ],
    )
    .unwrap();
    router.subscribe(clients[2], pred).unwrap();
    assert_eq!(
        router
            .publish(brokers[0], &int_event(&schema, &[1, 0, 1]))
            .unwrap()
            .recipients,
        vec![clients[2]]
    );
    assert!(router
        .publish(brokers[0], &int_event(&schema, &[0, 0, 1]))
        .unwrap()
        .recipients
        .is_empty());
    assert!(router
        .publish(brokers[0], &int_event(&schema, &[1, 0, 2]))
        .unwrap()
        .recipients
        .is_empty());
}

#[test]
fn publishing_from_a_broker_without_a_tree_fails_cleanly() {
    let schema = small_schema();
    let mut b = NetworkBuilder::new();
    let brokers = b.add_brokers(2);
    b.connect(brokers[0], brokers[1], 5.0).unwrap();
    let client = b.add_client(brokers[1]).unwrap();
    // Trees only for B0: B1 hosts no publishers.
    let fabric = RoutingFabric::new(b.build().unwrap(), &[brokers[0]]).unwrap();
    let mut router =
        ContentRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    router
        .subscribe(client, int_predicate(&schema, &[None, None, None]))
        .unwrap();
    let event = int_event(&schema, &[0, 0, 0]);
    assert!(router.publish(brokers[0], &event).is_ok());
    let err = router.publish(brokers[1], &event).unwrap_err();
    assert!(matches!(err, crate::CoreError::Unknown(_)), "{err:?}");
}

#[test]
fn subscribing_an_unknown_client_fails_cleanly() {
    let (fabric, _, _) = line_fabric();
    let schema = small_schema();
    let mut router =
        ContentRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    let err = router
        .subscribe(
            ClientId::new(999),
            int_predicate(&schema, &[None, None, None]),
        )
        .unwrap_err();
    assert!(matches!(err, crate::CoreError::Unknown(_)));
    // Baselines agree.
    let mut flood =
        FloodingRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    assert!(flood
        .subscribe(
            ClientId::new(999),
            int_predicate(&schema, &[None, None, None])
        )
        .is_err());
    let mut first =
        MatchFirstRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    assert!(first
        .subscribe(
            ClientId::new(999),
            int_predicate(&schema, &[None, None, None])
        )
        .is_err());
}

#[test]
fn match_first_groups_destinations_per_child_link() {
    // One subscriber on each of two branches below the publisher: the
    // destination list must split into one message per child, each carrying
    // one destination entry.
    let schema = small_schema();
    let mut b = NetworkBuilder::new();
    let hub = b.add_broker();
    let left = b.add_broker();
    let right = b.add_broker();
    b.connect(hub, left, 5.0).unwrap();
    b.connect(hub, right, 5.0).unwrap();
    let c_left = b.add_client(left).unwrap();
    let c_right = b.add_client(right).unwrap();
    let fabric = RoutingFabric::new_all_roots(b.build().unwrap()).unwrap();
    let mut first =
        MatchFirstRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    first
        .subscribe(c_left, int_predicate(&schema, &[None, None, None]))
        .unwrap();
    first
        .subscribe(c_right, int_predicate(&schema, &[None, None, None]))
        .unwrap();
    let d = first.publish(hub, &int_event(&schema, &[0, 0, 0])).unwrap();
    assert_eq!(d.recipients, vec![c_left, c_right]);
    assert_eq!(d.broker_messages, 2, "one copy per child link");
    assert_eq!(d.payload_units, 2, "one destination entry per copy");
}

#[test]
fn flooding_counts_prefilter_client_copies() {
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let mut flood =
        FloodingRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    // One selective subscriber; flooding still pushes a copy to all 3
    // clients and lets them filter.
    flood
        .subscribe(clients[2], int_predicate(&schema, &[Some(1), None, None]))
        .unwrap();
    let d = flood
        .publish(brokers[0], &int_event(&schema, &[1, 0, 0]))
        .unwrap();
    assert_eq!(d.recipients, vec![clients[2]], "post-filter outcome");
    assert_eq!(d.client_messages, 3, "pre-filter copies to every client");
    assert_eq!(d.broker_messages, 2, "every tree edge");
    let d = flood
        .publish(brokers[0], &int_event(&schema, &[2, 0, 0]))
        .unwrap();
    assert!(d.recipients.is_empty());
    assert_eq!(
        d.client_messages, 3,
        "flooding wastes the same copies regardless"
    );
}

#[test]
fn transit_brokers_without_clients_forward_correctly() {
    // B0 (publisher+client) - B1 (pure transit, no clients) - B2 (client).
    let schema = small_schema();
    let mut b = NetworkBuilder::new();
    let brokers = b.add_brokers(3);
    b.connect(brokers[0], brokers[1], 5.0).unwrap();
    b.connect(brokers[1], brokers[2], 5.0).unwrap();
    let c0 = b.add_client(brokers[0]).unwrap();
    let c2 = b.add_client(brokers[2]).unwrap();
    let fabric = RoutingFabric::new_all_roots(b.build().unwrap()).unwrap();
    assert_eq!(fabric.network().clients_of(brokers[1]).len(), 0);

    let mut router =
        ContentRouter::new(fabric.clone(), schema.clone(), PstOptions::default()).unwrap();
    router
        .subscribe(c2, int_predicate(&schema, &[Some(1), None, None]))
        .unwrap();
    router
        .subscribe(c0, int_predicate(&schema, &[Some(2), None, None]))
        .unwrap();
    let d = router
        .publish(brokers[0], &int_event(&schema, &[1, 0, 0]))
        .unwrap();
    assert_eq!(d.recipients, vec![c2]);
    assert_eq!(d.broker_messages, 2, "via the transit broker");
    // Publishing from the transit broker itself also works.
    let d = router
        .publish(brokers[1], &int_event(&schema, &[2, 0, 0]))
        .unwrap();
    assert_eq!(d.recipients, vec![c0]);
}

#[test]
fn with_subscriptions_builds_annotated_engine() {
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let space = LinkSpace::build(fabric.network(), fabric.forest(), brokers[0]);
    let subs: Vec<linkcast_types::Subscription> = (0..3)
        .map(|v| {
            linkcast_types::Subscription::new(
                linkcast_types::SubscriptionId::new(v as u32),
                linkcast_types::SubscriberId::new(
                    fabric.network().home_broker(clients[2]).unwrap(),
                    clients[2],
                ),
                int_predicate(&schema, &[Some(v), None, None]),
            )
        })
        .collect();
    // Built in bulk (FewestStarsFirst derives its order from this set).
    let engine = LinkMatchEngine::with_subscriptions(
        brokers[0],
        schema.clone(),
        PstOptions::default().with_order(OrderPolicy::FewestStarsFirst),
        space,
        subs,
    )
    .unwrap();
    assert_eq!(engine.subscription_count(), 3);
    let tree = fabric.tree_for(brokers[0]).unwrap();
    let links = engine.match_links_simple(&int_event(&schema, &[1, 0, 0]), tree);
    assert_eq!(links.len(), 1, "toward the subscriber's broker");
    assert!(
        engine
            .match_links_simple(&int_event(&schema, &[1, 2, 2]), tree)
            .len()
            == 1
    );
}

#[test]
fn rebuild_annotations_is_idempotent() {
    let (fabric, brokers, clients) = line_fabric();
    let schema = small_schema();
    let space = LinkSpace::build(fabric.network(), fabric.forest(), brokers[0]);
    let mut engine =
        LinkMatchEngine::new(brokers[0], schema.clone(), PstOptions::default(), space).unwrap();
    let home = fabric.network().home_broker(clients[2]).unwrap();
    engine
        .subscribe(linkcast_types::Subscription::new(
            linkcast_types::SubscriptionId::new(0),
            linkcast_types::SubscriberId::new(home, clients[2]),
            int_predicate(&schema, &[Some(1), None, None]),
        ))
        .unwrap();
    let tree = fabric.tree_for(brokers[0]).unwrap();
    let event = int_event(&schema, &[1, 0, 0]);
    let before = engine.match_links_simple(&event, tree);
    engine.rebuild_annotations();
    assert_eq!(engine.match_links_simple(&event, tree), before);
    // Annotations exist for every live node after the rebuild.
    for id in engine.pst().postorder() {
        assert!(engine.annotation(id).is_some(), "{id} unannotated");
    }
}

/// The arena walk must reproduce the recursive §3.3 search bit-for-bit:
/// same links from every publisher/tree/event across option configs, and —
/// when trivial-test elimination is off, so no skip chains are collapsed —
/// the same step and comparison counts.
#[test]
fn arena_walk_agrees_with_recursive_search() {
    let mut rng = StdRng::seed_from_u64(4242);
    let schema = small_schema();
    let configs = [
        PstOptions::default(),
        PstOptions::default().with_factoring(1),
        PstOptions::default()
            .with_order(OrderPolicy::Explicit(vec![2, 0, 1]))
            .with_trivial_test_elimination(true),
    ];
    for (ci, options) in configs.iter().enumerate() {
        let (fabric, clients) = random_tree_network(&mut rng, 5);
        let broker = fabric.network().brokers().next().unwrap();
        let space = LinkSpace::build(fabric.network(), fabric.forest(), broker);
        let mut engine =
            LinkMatchEngine::new(broker, schema.clone(), options.clone(), space).unwrap();
        let mut next_id = 0u32;
        for &client in &clients {
            for _ in 0..rng.random_range(0..3) {
                let tests: Vec<Option<i64>> = (0..3)
                    .map(|_| rng.random_bool(0.6).then(|| rng.random_range(0..3)))
                    .collect();
                let home = fabric.network().home_broker(client).unwrap();
                engine
                    .subscribe(linkcast_types::Subscription::new(
                        linkcast_types::SubscriptionId::new(next_id),
                        linkcast_types::SubscriberId::new(home, client),
                        int_predicate(&schema, &tests),
                    ))
                    .unwrap();
                next_id += 1;
            }
        }
        let mut scratch = crate::RouteScratch::new();
        let mut out = Vec::new();
        let tree = fabric.tree_for(broker).unwrap();
        for _ in 0..40 {
            let values: Vec<i64> = (0..3).map(|_| rng.random_range(0..3)).collect();
            let event = int_event(&schema, &values);
            let mut rec_stats = MatchStats::new();
            let expected = engine.match_links(&event, tree, &mut rec_stats);
            let mut arena_stats = MatchStats::new();
            engine.match_links_into(&event, tree, &mut scratch, &mut arena_stats, &mut out);
            assert_eq!(out, expected, "config {ci}, event {values:?}");
            if !options.eliminate_trivial_tests {
                assert_eq!(arena_stats, rec_stats, "config {ci}, event {values:?}");
            }
        }
    }
}

/// Subscribe/unsubscribe churn: the arena (incrementally patched or
/// rebuilt) must track the mutable PST exactly, and the generation counter
/// must tick on every mutation.
#[test]
fn arena_tracks_subscription_churn() {
    let mut rng = StdRng::seed_from_u64(1717);
    let schema = small_schema();
    let (fabric, clients) = random_tree_network(&mut rng, 4);
    let broker = fabric.network().brokers().next().unwrap();
    let space = LinkSpace::build(fabric.network(), fabric.forest(), broker);
    let mut engine = LinkMatchEngine::new(
        broker,
        schema.clone(),
        PstOptions::default().with_factoring(1),
        space,
    )
    .unwrap();
    let tree = fabric.tree_for(broker).unwrap();
    let mut scratch = crate::RouteScratch::new();
    let mut out = Vec::new();
    let mut live: Vec<u32> = Vec::new();
    let mut next_id = 0u32;
    for step in 0..200 {
        let before = engine.generation();
        if live.is_empty() || rng.random_bool(0.6) {
            let client = clients[rng.random_range(0..clients.len())];
            let tests: Vec<Option<i64>> = (0..3)
                .map(|_| rng.random_bool(0.6).then(|| rng.random_range(0..3)))
                .collect();
            let home = fabric.network().home_broker(client).unwrap();
            engine
                .subscribe(linkcast_types::Subscription::new(
                    linkcast_types::SubscriptionId::new(next_id),
                    linkcast_types::SubscriberId::new(home, client),
                    int_predicate(&schema, &tests),
                ))
                .unwrap();
            live.push(next_id);
            next_id += 1;
        } else {
            let id = live.swap_remove(rng.random_range(0..live.len()));
            assert!(engine.unsubscribe(linkcast_types::SubscriptionId::new(id)));
        }
        assert_eq!(engine.generation(), before + 1, "step {step}");
        for _ in 0..5 {
            let values: Vec<i64> = (0..3).map(|_| rng.random_range(0..3)).collect();
            let event = int_event(&schema, &values);
            let expected = engine.match_links_simple(&event, tree);
            let mut stats = MatchStats::new();
            engine.match_links_into(&event, tree, &mut scratch, &mut stats, &mut out);
            assert_eq!(out, expected, "step {step}, event {values:?}");
        }
    }
}

/// The scratch-reusing parallel path agrees with the sequential search and
/// with its own allocating wrapper across thread counts.
#[test]
fn parallel_route_scratch_reuse_is_equivalent() {
    let mut rng = StdRng::seed_from_u64(9090);
    let schema = small_schema();
    let (fabric, clients) = random_tree_network(&mut rng, 6);
    let broker = fabric.network().brokers().next().unwrap();
    let space = LinkSpace::build(fabric.network(), fabric.forest(), broker);
    let mut engine = LinkMatchEngine::new(
        broker,
        schema.clone(),
        PstOptions::default().with_factoring(1),
        space,
    )
    .unwrap();
    let mut next_id = 0u32;
    for &client in &clients {
        for _ in 0..3 {
            let tests: Vec<Option<i64>> = (0..3)
                .map(|_| rng.random_bool(0.5).then(|| rng.random_range(0..3)))
                .collect();
            let home = fabric.network().home_broker(client).unwrap();
            engine
                .subscribe(linkcast_types::Subscription::new(
                    linkcast_types::SubscriptionId::new(next_id),
                    linkcast_types::SubscriberId::new(home, client),
                    int_predicate(&schema, &tests),
                ))
                .unwrap();
            next_id += 1;
        }
    }
    let tree = fabric.tree_for(broker).unwrap();
    let mut scratch = crate::RouteScratch::new();
    let mut out = Vec::new();
    for _ in 0..30 {
        let values: Vec<i64> = (0..3).map(|_| rng.random_range(0..3)).collect();
        let event = int_event(&schema, &values);
        let expected = engine.match_links_simple(&event, tree);
        for threads in [1, 2, 4] {
            let mut stats = MatchStats::new();
            engine.match_links_parallel_into(
                &event,
                tree,
                threads,
                &mut scratch,
                &mut stats,
                &mut out,
            );
            assert_eq!(out, expected, "threads {threads}, event {values:?}");
            assert_eq!(stats.events, 1);
            let mut alloc_stats = MatchStats::new();
            let alloc = engine.match_links_parallel(&event, tree, threads, &mut alloc_stats);
            assert_eq!(alloc, expected);
        }
    }
}

/// Direct structural soundness of [`LinkSpace`] on random cyclic networks:
/// masks and leaf vectors stay inside the active tree's class block, local
/// clients are always mapped via their client link, and downstream
/// destinations map to the spanning tree's next hop.
#[test]
fn link_space_structure_is_sound_on_random_networks() {
    let mut rng = StdRng::seed_from_u64(91);
    for round in 0..10 {
        // Random tree plus a couple of chords.
        let n = 3 + round % 5;
        let mut b = NetworkBuilder::new();
        let ids = b.add_brokers(n);
        for i in 1..n {
            b.connect(
                ids[i],
                ids[rng.random_range(0..i)],
                1.0 + rng.random_range(0..40) as f64,
            )
            .unwrap();
        }
        for _ in 0..2 {
            let (x, y) = (rng.random_range(0..n), rng.random_range(0..n));
            if x != y {
                let _ = b.connect(ids[x], ids[y], 5.0);
            }
        }
        let mut clients = Vec::new();
        for &id in &ids {
            clients.extend(b.add_clients(id, 2).unwrap());
        }
        let network = b.build().unwrap();
        let forest = crate::SpanningForest::compute_all(&network).unwrap();

        for broker in network.brokers() {
            let space = LinkSpace::build(&network, &forest, broker);
            let links = network.link_count(broker);
            assert_eq!(space.width(), space.class_count() * links);

            for (tree_id, tree) in forest.iter() {
                let class = space.class(tree_id);
                let mask = space.init_mask(tree_id);
                assert_eq!(mask.len(), space.width());
                // Every Maybe lies inside the active class block.
                for position in mask.maybe_indices() {
                    assert!(
                        position / links == class,
                        "round {round}: {broker} {tree_id}: Maybe at {position} outside class {class}"
                    );
                }
                assert!(!mask.has_yes(), "init masks are Maybe/No only");

                // Leaf vectors: local clients map through their client
                // link; downstream clients map through the tree next hop.
                for &client in &clients {
                    let vector = space.leaf_vector(client);
                    let home = network.home_broker(client).unwrap();
                    let in_class: Vec<usize> = vector
                        .yes_indices()
                        .filter(|p| p / links == class)
                        .collect();
                    assert!(in_class.len() <= 1, "one link per class");
                    if home == broker {
                        let expect = network.link_to_client(broker, client).unwrap();
                        assert_eq!(
                            in_class,
                            vec![class * links + expect.index()],
                            "local clients use their client link"
                        );
                    } else if let Some(child) = tree.child_toward(broker, home) {
                        let expect = network.link_to_broker(broker, child).unwrap();
                        assert_eq!(
                            in_class,
                            vec![class * links + expect.index()],
                            "downstream clients use the tree next hop"
                        );
                    }
                }
            }
        }
    }
}
