//! The broker network: brokers, inter-broker links, and attached clients.

use std::collections::HashMap;
use std::fmt;

use linkcast_types::{BrokerId, ClientId, LinkId};

use crate::{CoreError, Result};

/// What an outgoing link of a broker leads to: a neighboring broker or a
/// locally attached client (paper Fig. 3: "neighbors may be brokers or
/// clients").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkTarget {
    /// A neighboring broker.
    Broker(BrokerId),
    /// A locally attached client.
    Client(ClientId),
}

impl fmt::Display for LinkTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkTarget::Broker(b) => write!(f, "{b}"),
            LinkTarget::Client(c) => write!(f, "{c}"),
        }
    }
}

#[derive(Debug, Clone)]
struct BrokerNode {
    /// Neighboring brokers and the one-way delay of the link, in
    /// milliseconds, sorted by neighbor id.
    neighbors: Vec<(BrokerId, f64)>,
    /// Locally attached clients, sorted.
    clients: Vec<ClientId>,
}

/// An immutable broker-network topology.
///
/// Built with [`NetworkBuilder`]; validated to be connected, with every
/// client attached to exactly one broker. Per broker, outgoing links are
/// numbered `0..`: first the broker links (by neighbor id), then the client
/// links (by client id) — this is the link order trit vectors use.
///
/// # Example
///
/// ```
/// use linkcast::NetworkBuilder;
///
/// # fn main() -> Result<(), linkcast::CoreError> {
/// let mut b = NetworkBuilder::new();
/// let b0 = b.add_broker();
/// let b1 = b.add_broker();
/// b.connect(b0, b1, 10.0)?;
/// let alice = b.add_client(b0)?;
/// let network = b.build()?;
/// assert_eq!(network.broker_count(), 2);
/// assert_eq!(network.home_broker(alice), Some(b0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BrokerNetwork {
    brokers: Vec<BrokerNode>,
    client_home: Vec<BrokerId>,
}

impl BrokerNetwork {
    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }

    /// Number of clients across all brokers.
    pub fn client_count(&self) -> usize {
        self.client_home.len()
    }

    /// Iterates over all broker ids.
    pub fn brokers(&self) -> impl Iterator<Item = BrokerId> {
        (0..self.brokers.len() as u32).map(BrokerId::new)
    }

    /// Iterates over all client ids.
    pub fn clients(&self) -> impl Iterator<Item = ClientId> {
        (0..self.client_home.len() as u32).map(ClientId::new)
    }

    /// The broker a client is attached to, if the client exists.
    pub fn home_broker(&self, client: ClientId) -> Option<BrokerId> {
        self.client_home.get(client.index()).copied()
    }

    /// The clients attached to `broker`.
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range.
    pub fn clients_of(&self, broker: BrokerId) -> &[ClientId] {
        &self.brokers[broker.index()].clients
    }

    /// The neighboring brokers of `broker` with link delays (ms).
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range.
    pub fn neighbors(&self, broker: BrokerId) -> &[(BrokerId, f64)] {
        &self.brokers[broker.index()].neighbors
    }

    /// Number of outgoing links (broker links + client links) of `broker`.
    pub fn link_count(&self, broker: BrokerId) -> usize {
        let node = &self.brokers[broker.index()];
        node.neighbors.len() + node.clients.len()
    }

    /// The target of link `link` of `broker`.
    ///
    /// # Panics
    ///
    /// Panics if the link index is out of range.
    pub fn link_target(&self, broker: BrokerId, link: LinkId) -> LinkTarget {
        let node = &self.brokers[broker.index()];
        let i = link.index();
        if i < node.neighbors.len() {
            LinkTarget::Broker(node.neighbors[i].0)
        } else {
            LinkTarget::Client(node.clients[i - node.neighbors.len()])
        }
    }

    /// The link of `broker` leading to a neighboring broker, if adjacent.
    pub fn link_to_broker(&self, broker: BrokerId, neighbor: BrokerId) -> Option<LinkId> {
        let node = &self.brokers[broker.index()];
        node.neighbors
            .binary_search_by(|(n, _)| n.cmp(&neighbor))
            .ok()
            .map(|i| LinkId::new(i as u32))
    }

    /// The link of `broker` leading to a locally attached client, if local.
    pub fn link_to_client(&self, broker: BrokerId, client: ClientId) -> Option<LinkId> {
        let node = &self.brokers[broker.index()];
        node.clients
            .binary_search(&client)
            .ok()
            .map(|i| LinkId::new((node.neighbors.len() + i) as u32))
    }

    /// The one-way delay (ms) of the link between two adjacent brokers.
    pub fn delay(&self, a: BrokerId, b: BrokerId) -> Option<f64> {
        let node = &self.brokers[a.index()];
        node.neighbors
            .binary_search_by(|(n, _)| n.cmp(&b))
            .ok()
            .map(|i| node.neighbors[i].1)
    }

    /// Renders the topology in Graphviz `dot` syntax: brokers as circles
    /// with client counts, links labeled with one-way delays.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("graph topology {\n  layout=neato;\n  node [fontname=\"monospace\"];\n");
        for broker in self.brokers() {
            let clients = self.clients_of(broker).len();
            let _ = writeln!(
                out,
                "  \"{broker}\" [shape=circle, label=\"{broker}\\n{clients} clients\"];"
            );
        }
        for a in self.brokers() {
            for &(b, delay) in self.neighbors(a) {
                if a < b {
                    let _ = writeln!(out, "  \"{a}\" -- \"{b}\" [label=\"{delay} ms\"];");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Shortest-path distances (total delay, ms) from `source` to every
    /// broker, and the first hop toward each (Dijkstra; ties broken toward
    /// the lower-numbered neighbor for determinism).
    ///
    /// Returns `(distance, parent)` vectors indexed by broker.
    pub fn shortest_paths(&self, source: BrokerId) -> (Vec<f64>, Vec<Option<BrokerId>>) {
        self.shortest_paths_excluding(source, &[])
    }

    /// [`shortest_paths`](Self::shortest_paths) over the surviving graph:
    /// edges listed in `excluded` (either endpoint order) are skipped during
    /// relaxation, as if severed. Brokers unreachable without them keep
    /// `INFINITY` distance and `None` parent — callers treat those as
    /// outside the tree rather than erroring, so topology repair can route
    /// the surviving component while a partition is in effect.
    pub fn shortest_paths_excluding(
        &self,
        source: BrokerId,
        excluded: &[(BrokerId, BrokerId)],
    ) -> (Vec<f64>, Vec<Option<BrokerId>>) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry(f64, BrokerId);
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance, then on broker id.
                other
                    .0
                    .partial_cmp(&self.0)
                    .unwrap_or(Ordering::Equal)
                    .then(other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.brokers.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<BrokerId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[source.index()] = 0.0;
        heap.push(Entry(0.0, source));
        while let Some(Entry(d, b)) = heap.pop() {
            if d > dist[b.index()] {
                continue;
            }
            for &(next, w) in &self.brokers[b.index()].neighbors {
                if excluded
                    .iter()
                    .any(|&(x, y)| (x, y) == (b, next) || (y, x) == (b, next))
                {
                    continue;
                }
                let nd = d + w;
                let cur = dist[next.index()];
                // Deterministic tie-break: prefer the lower-id parent.
                let better = nd < cur || (nd == cur && parent[next.index()].is_some_and(|p| b < p));
                if better {
                    dist[next.index()] = nd;
                    parent[next.index()] = Some(b);
                    heap.push(Entry(nd, next));
                }
            }
        }
        (dist, parent)
    }
}

/// Incrementally builds a [`BrokerNetwork`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    brokers: Vec<BrokerNode>,
    client_home: Vec<BrokerId>,
    edges: HashMap<(BrokerId, BrokerId), f64>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a broker, returning its id.
    pub fn add_broker(&mut self) -> BrokerId {
        self.brokers.push(BrokerNode {
            neighbors: Vec::new(),
            clients: Vec::new(),
        });
        BrokerId::new((self.brokers.len() - 1) as u32)
    }

    /// Adds `count` brokers, returning their ids.
    pub fn add_brokers(&mut self, count: usize) -> Vec<BrokerId> {
        (0..count).map(|_| self.add_broker()).collect()
    }

    /// Connects two brokers with a bidirectional link of the given one-way
    /// delay in milliseconds.
    ///
    /// # Errors
    ///
    /// [`CoreError::Topology`] if either broker is unknown, the brokers are
    /// equal, the delay is not positive and finite, or the link already
    /// exists.
    pub fn connect(&mut self, a: BrokerId, b: BrokerId, delay_ms: f64) -> Result<()> {
        if a == b {
            return Err(CoreError::Topology(format!("self-link on {a}")));
        }
        if a.index() >= self.brokers.len() || b.index() >= self.brokers.len() {
            return Err(CoreError::Topology(format!("unknown broker in {a}-{b}")));
        }
        if !(delay_ms.is_finite() && delay_ms > 0.0) {
            return Err(CoreError::Topology(format!(
                "link {a}-{b} has invalid delay {delay_ms}"
            )));
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if self.edges.insert(key, delay_ms).is_some() {
            return Err(CoreError::Topology(format!("duplicate link {a}-{b}")));
        }
        Ok(())
    }

    /// Attaches a new client to `broker`, returning the client id.
    ///
    /// # Errors
    ///
    /// [`CoreError::Topology`] if the broker is unknown.
    pub fn add_client(&mut self, broker: BrokerId) -> Result<ClientId> {
        if broker.index() >= self.brokers.len() {
            return Err(CoreError::Topology(format!("unknown broker {broker}")));
        }
        let id = ClientId::new(self.client_home.len() as u32);
        self.client_home.push(broker);
        self.brokers[broker.index()].clients.push(id);
        Ok(id)
    }

    /// Attaches `count` clients to `broker`.
    ///
    /// # Errors
    ///
    /// See [`NetworkBuilder::add_client`].
    pub fn add_clients(&mut self, broker: BrokerId, count: usize) -> Result<Vec<ClientId>> {
        (0..count).map(|_| self.add_client(broker)).collect()
    }

    /// Finalizes and validates the network.
    ///
    /// # Errors
    ///
    /// [`CoreError::Topology`] if there are no brokers or the broker graph
    /// is not connected.
    pub fn build(mut self) -> Result<BrokerNetwork> {
        if self.brokers.is_empty() {
            return Err(CoreError::Topology("network has no brokers".into()));
        }
        for (&(a, b), &delay) in &self.edges {
            self.brokers[a.index()].neighbors.push((b, delay));
            self.brokers[b.index()].neighbors.push((a, delay));
        }
        for node in &mut self.brokers {
            node.neighbors.sort_by_key(|(n, _)| *n);
            node.clients.sort_unstable();
        }
        let network = BrokerNetwork {
            brokers: self.brokers,
            client_home: self.client_home,
        };
        // Connectivity check from broker 0.
        let (dist, _) = network.shortest_paths(BrokerId::new(0));
        if let Some(unreachable) = dist.iter().position(|d| !d.is_finite()) {
            return Err(CoreError::Topology(format!(
                "broker B{unreachable} is unreachable from B0"
            )));
        }
        Ok(network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-broker line: B0 - B1 - B2 - B3, one client each.
    fn line() -> (BrokerNetwork, Vec<ClientId>) {
        let mut b = NetworkBuilder::new();
        let ids = b.add_brokers(4);
        b.connect(ids[0], ids[1], 10.0).unwrap();
        b.connect(ids[1], ids[2], 10.0).unwrap();
        b.connect(ids[2], ids[3], 10.0).unwrap();
        let clients = ids.iter().map(|&id| b.add_client(id).unwrap()).collect();
        (b.build().unwrap(), clients)
    }

    #[test]
    fn builder_assigns_ids_and_homes() {
        let (net, clients) = line();
        assert_eq!(net.broker_count(), 4);
        assert_eq!(net.client_count(), 4);
        assert_eq!(net.home_broker(clients[2]), Some(BrokerId::new(2)));
        assert_eq!(net.home_broker(ClientId::new(99)), None);
        assert_eq!(net.clients_of(BrokerId::new(1)), &[clients[1]]);
        assert_eq!(net.brokers().count(), 4);
        assert_eq!(net.clients().count(), 4);
    }

    #[test]
    fn link_numbering_is_brokers_then_clients() {
        let (net, clients) = line();
        let b1 = BrokerId::new(1);
        // B1 has neighbors B0, B2 then client c1.
        assert_eq!(net.link_count(b1), 3);
        assert_eq!(
            net.link_target(b1, LinkId::new(0)),
            LinkTarget::Broker(BrokerId::new(0))
        );
        assert_eq!(
            net.link_target(b1, LinkId::new(1)),
            LinkTarget::Broker(BrokerId::new(2))
        );
        assert_eq!(
            net.link_target(b1, LinkId::new(2)),
            LinkTarget::Client(clients[1])
        );
        assert_eq!(
            net.link_to_broker(b1, BrokerId::new(2)),
            Some(LinkId::new(1))
        );
        assert_eq!(net.link_to_broker(b1, BrokerId::new(3)), None);
        assert_eq!(net.link_to_client(b1, clients[1]), Some(LinkId::new(2)));
        assert_eq!(net.link_to_client(b1, clients[0]), None);
        assert_eq!(net.delay(b1, BrokerId::new(2)), Some(10.0));
        assert_eq!(net.delay(b1, BrokerId::new(3)), None);
    }

    #[test]
    fn shortest_paths_on_line() {
        let (net, _) = line();
        let (dist, parent) = net.shortest_paths(BrokerId::new(0));
        assert_eq!(dist, vec![0.0, 10.0, 20.0, 30.0]);
        assert_eq!(parent[3], Some(BrokerId::new(2)));
        assert_eq!(parent[0], None);
    }

    #[test]
    fn shortest_paths_prefer_cheap_routes() {
        // Triangle with one expensive edge: B0-B2 direct costs 50, via B1
        // costs 20.
        let mut b = NetworkBuilder::new();
        let ids = b.add_brokers(3);
        b.connect(ids[0], ids[1], 10.0).unwrap();
        b.connect(ids[1], ids[2], 10.0).unwrap();
        b.connect(ids[0], ids[2], 50.0).unwrap();
        let net = b.build().unwrap();
        let (dist, parent) = net.shortest_paths(ids[0]);
        assert_eq!(dist[2], 20.0);
        assert_eq!(parent[2], Some(ids[1]));
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = NetworkBuilder::new();
        let b0 = b.add_broker();
        let b1 = b.add_broker();
        assert!(b.connect(b0, b0, 1.0).is_err());
        assert!(b.connect(b0, BrokerId::new(9), 1.0).is_err());
        assert!(b.connect(b0, b1, 0.0).is_err());
        assert!(b.connect(b0, b1, f64::NAN).is_err());
        b.connect(b0, b1, 1.0).unwrap();
        assert!(b.connect(b1, b0, 2.0).is_err(), "duplicate link");
        assert!(b.add_client(BrokerId::new(9)).is_err());
        assert!(NetworkBuilder::new().build().is_err(), "empty network");
    }

    #[test]
    fn disconnected_networks_are_rejected() {
        let mut b = NetworkBuilder::new();
        let _b0 = b.add_broker();
        let _b1 = b.add_broker();
        let err = b.build().unwrap_err();
        assert!(matches!(err, CoreError::Topology(_)));
    }

    #[test]
    fn single_broker_network_is_fine() {
        let mut b = NetworkBuilder::new();
        let b0 = b.add_broker();
        let c = b.add_client(b0).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.link_count(b0), 1);
        assert_eq!(net.link_target(b0, LinkId::new(0)), LinkTarget::Client(c));
    }

    #[test]
    fn to_dot_renders_the_graph() {
        let (net, _) = line();
        let dot = net.to_dot();
        assert!(dot.starts_with("graph topology {"), "{dot}");
        assert!(dot.contains("\"B0\" -- \"B1\""), "{dot}");
        assert!(dot.contains("10 ms"), "{dot}");
        assert!(dot.contains("1 clients"), "{dot}");
        assert!(dot.ends_with("}\n"));
        // Each undirected link appears exactly once.
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn link_target_display() {
        assert_eq!(LinkTarget::Broker(BrokerId::new(2)).to_string(), "B2");
        assert_eq!(LinkTarget::Client(ClientId::new(3)).to_string(), "C3");
    }
}
