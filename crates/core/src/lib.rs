//! # linkcast — content-based publish/subscribe with link matching
//!
//! A Rust reproduction of *"An Efficient Multicast Protocol for
//! Content-Based Publish-Subscribe Systems"* (Banavar, Chandra, Mukherjee,
//! Nagarajarao, Strom, Sturman — ICDCS 1999), the Gryphon **link matching**
//! paper.
//!
//! Content-based subscribers ask for events by predicate
//! (`issue = "IBM" & price < 120 & volume > 1000`) rather than by
//! pre-defined subject. The hard problem in a *network* of brokers is
//! multicasting each published event to exactly the brokers and clients
//! that need it, without attaching destination lists (match-first) and
//! without sending everything everywhere (flooding). Link matching solves
//! it: every broker keeps the full subscription set in a parallel search
//! tree annotated with **trit vectors** (Yes/No/Maybe, one per outgoing
//! link) and, per event, refines a per-spanning-tree mask just enough to
//! decide which links carry the event.
//!
//! ## Crate map
//!
//! - [`NetworkBuilder`] / [`BrokerNetwork`] — the broker topology.
//! - [`SpanningForest`] / [`LinkSpace`] — distribution trees, initialization
//!   masks, and virtual links (footnote 1).
//! - [`LinkMatchEngine`] — one broker's annotated PST and the §3.3 search.
//! - [`ContentRouter`] — the protocol end-to-end over a network.
//! - [`FloodingRouter`] / [`MatchFirstRouter`] — the baselines the paper
//!   argues against, for comparison experiments.
//!
//! Re-exported: [`linkcast_types`] as [`types`] and [`linkcast_matching`]
//! as [`matching`] (schemas, predicates, trits, and the single-broker
//! matchers).
//!
//! ## Quickstart
//!
//! ```
//! use linkcast::{NetworkBuilder, RoutingFabric, ContentRouter, EventRouter};
//! use linkcast::matching::PstOptions;
//! use linkcast::types::{EventSchema, ValueKind, Value, Event, parse_predicate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three brokers in a line, a publisher at B0, a subscriber at B2.
//! let mut b = NetworkBuilder::new();
//! let brokers = b.add_brokers(3);
//! b.connect(brokers[0], brokers[1], 25.0)?;
//! b.connect(brokers[1], brokers[2], 25.0)?;
//! let alice = b.add_client(brokers[2])?;
//! let bob = b.add_client(brokers[1])?;
//! let fabric = RoutingFabric::new(b.build()?, &[brokers[0]])?;
//!
//! let schema = EventSchema::builder("trades")
//!     .attribute("issue", ValueKind::Str)
//!     .attribute("price", ValueKind::Dollar)
//!     .attribute("volume", ValueKind::Int)
//!     .build()?;
//! let mut router = ContentRouter::new(fabric, schema.clone(), PstOptions::default())?;
//!
//! router.subscribe(alice, parse_predicate(&schema, r#"issue = "IBM" & price < 120.00"#)?)?;
//! router.subscribe(bob, parse_predicate(&schema, r#"volume > 5000"#)?)?;
//!
//! let event = Event::from_values(
//!     &schema,
//!     [Value::str("IBM"), Value::dollar(119, 0), Value::Int(100)],
//! )?;
//! let delivery = router.publish(brokers[0], &event)?;
//! assert_eq!(delivery.recipients, vec![alice]); // bob's volume test fails
//! # Ok(())
//! # }
//! ```

mod arena;
mod baselines;
mod cache;
mod engine;
mod error;
mod router;
mod spanning;
mod topology;

pub use arena::{MatchArena, MatchScratch};
pub use baselines::{FloodingRouter, MatchFirstRouter};
pub use cache::MatchCache;
pub use engine::{LinkMatchEngine, RouteScratch};
pub use error::{CoreError, Result};
pub use router::{ContentRouter, Delivery, EventRouter, HopRecord, RoutingFabric};
pub use spanning::{LinkSpace, SpanningForest, SpanningTree, TreeId};
pub use topology::{BrokerNetwork, LinkTarget, NetworkBuilder};

pub use linkcast_matching as matching;
pub use linkcast_types as types;

#[cfg(test)]
mod engine_tests;
