//! Whole-network content routing: the link-matching protocol driven
//! hop-by-hop over a broker network.

use std::sync::Arc;

use linkcast_matching::{MatchStats, PstOptions};
use linkcast_types::{
    BrokerId, ClientId, Event, EventSchema, LinkId, Predicate, SubscriberId, Subscription,
    SubscriptionId,
};

use crate::{
    BrokerNetwork, CoreError, LinkMatchEngine, LinkSpace, LinkTarget, Result, SpanningForest,
    TreeId,
};

/// The static routing substrate shared by every protocol implementation:
/// the broker network plus its spanning forest.
#[derive(Debug)]
pub struct RoutingFabric {
    network: BrokerNetwork,
    forest: SpanningForest,
}

impl RoutingFabric {
    /// Builds the fabric with spanning trees rooted at the given
    /// publisher-hosting brokers.
    ///
    /// # Errors
    ///
    /// Any topology error from [`SpanningForest::compute`].
    pub fn new(network: BrokerNetwork, publisher_brokers: &[BrokerId]) -> Result<Arc<Self>> {
        let forest = SpanningForest::compute(&network, publisher_brokers)?;
        Ok(Arc::new(RoutingFabric { network, forest }))
    }

    /// Builds the fabric assuming any broker may host publishers.
    ///
    /// # Errors
    ///
    /// Any topology error from [`SpanningForest::compute_all`].
    pub fn new_all_roots(network: BrokerNetwork) -> Result<Arc<Self>> {
        let forest = SpanningForest::compute_all(&network)?;
        Ok(Arc::new(RoutingFabric { network, forest }))
    }

    /// Rebuilds the fabric over the surviving graph: the same network and
    /// the same (sorted) root set, with the spanning forest recomputed as
    /// if the `excluded` edges were severed. Link numbering is untouched —
    /// dead edges stay in the network and keep their [`LinkId`]s; they are
    /// only barred from tree membership, so trit-vector positions remain
    /// stable across repairs. Every broker recomputing from the same
    /// exclusion set derives the same forest (and the same [`TreeId`]
    /// assignment), which is what lets topology epochs stand in for full
    /// tree comparison on the wire.
    ///
    /// # Errors
    ///
    /// Any topology error from [`SpanningForest::compute_excluding`].
    pub fn rebuild_excluding(&self, excluded: &[(BrokerId, BrokerId)]) -> Result<Arc<Self>> {
        let network = self.network.clone();
        let forest = SpanningForest::compute_excluding(&network, &self.forest.roots(), excluded)?;
        Ok(Arc::new(RoutingFabric { network, forest }))
    }

    /// The broker network.
    pub fn network(&self) -> &BrokerNetwork {
        &self.network
    }

    /// The spanning forest.
    pub fn forest(&self) -> &SpanningForest {
        &self.forest
    }

    /// The spanning tree used by publishers at `broker`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unknown`] if no tree was computed for `broker`.
    pub fn tree_for(&self, broker: BrokerId) -> Result<TreeId> {
        self.forest
            .tree_for_root(broker)
            .ok_or_else(|| CoreError::Unknown(format!("no spanning tree rooted at {broker}")))
    }
}

/// Per-broker cost record inside a [`Delivery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// The broker that processed the event.
    pub broker: BrokerId,
    /// Distance (broker hops) from the publishing broker.
    pub hops: u32,
    /// Matching steps spent at this broker.
    pub steps: u64,
}

/// The outcome of publishing one event through a routing protocol.
#[derive(Debug, Clone, Default)]
pub struct Delivery {
    /// Clients that received the event, sorted and deduplicated.
    pub recipients: Vec<ClientId>,
    /// Event copies sent over broker-to-broker links.
    pub broker_messages: u64,
    /// Event copies delivered over broker-to-client links.
    pub client_messages: u64,
    /// Matching steps summed over all brokers that processed the event.
    pub total_steps: u64,
    /// Per-broker processing record, in processing order.
    pub per_hop: Vec<HopRecord>,
    /// Greatest broker-hop distance the event traveled.
    pub max_hops: u32,
    /// Destination-list entries carried in message headers (the match-first
    /// baseline's overhead; zero for link matching and flooding).
    pub payload_units: u64,
}

impl Delivery {
    pub(crate) fn record_hop(&mut self, broker: BrokerId, hops: u32, steps: u64) {
        self.total_steps += steps;
        self.max_hops = self.max_hops.max(hops);
        self.per_hop.push(HopRecord {
            broker,
            hops,
            steps,
        });
    }

    pub(crate) fn finish(mut self) -> Self {
        self.recipients.sort_unstable();
        self.recipients.dedup();
        self
    }
}

/// A content-based event-distribution protocol over a broker network.
///
/// Implemented by [`ContentRouter`] (link matching) and the two baselines
/// ([`FloodingRouter`](crate::FloodingRouter),
/// [`MatchFirstRouter`](crate::MatchFirstRouter)); the simulator and the
/// tests are generic over this trait.
pub trait EventRouter {
    /// Registers a subscription for `client`, assigning an id.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unknown`] for unknown clients, plus matcher errors.
    fn subscribe(&mut self, client: ClientId, predicate: Predicate) -> Result<SubscriptionId>;

    /// Removes a subscription; returns whether it existed.
    fn unsubscribe(&mut self, id: SubscriptionId) -> bool;

    /// Publishes an event from a publisher attached to `broker`, propagating
    /// it hop-by-hop and returning the delivery record.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unknown`] if `broker` has no spanning tree.
    fn publish(&self, broker: BrokerId, event: &Event) -> Result<Delivery>;

    /// Number of active subscriptions.
    fn subscription_count(&self) -> usize;
}

/// The paper's protocol: link matching at every hop (§3).
///
/// Every broker holds the full subscription set in an annotated PST; each
/// event is matched just enough at each hop to decide which links carry it.
/// At most one copy crosses any link, no destination lists are attached,
/// and clients receive exactly the events they subscribed to.
#[derive(Debug)]
pub struct ContentRouter {
    fabric: Arc<RoutingFabric>,
    engines: Vec<LinkMatchEngine>,
    next_subscription: u32,
}

impl ContentRouter {
    /// Creates a router: one [`LinkMatchEngine`] per broker.
    ///
    /// # Errors
    ///
    /// Any engine construction error.
    pub fn new(
        fabric: Arc<RoutingFabric>,
        schema: EventSchema,
        options: PstOptions,
    ) -> Result<Self> {
        let mut engines = Vec::with_capacity(fabric.network().broker_count());
        for broker in fabric.network().brokers() {
            let space = LinkSpace::build(fabric.network(), fabric.forest(), broker);
            engines.push(LinkMatchEngine::new(
                broker,
                schema.clone(),
                options.clone(),
                space,
            )?);
        }
        Ok(ContentRouter {
            fabric,
            engines,
            next_subscription: 0,
        })
    }

    /// The shared routing fabric.
    pub fn fabric(&self) -> &Arc<RoutingFabric> {
        &self.fabric
    }

    /// The engine of one broker (e.g. for inspecting annotations or
    /// measuring per-broker matching cost).
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range.
    pub fn engine(&self, broker: BrokerId) -> &LinkMatchEngine {
        &self.engines[broker.index()]
    }

    /// Runs §2 centralized matching at `broker` (the non-trit algorithm) —
    /// the comparison series of Chart 2.
    pub fn centralized_match(
        &self,
        broker: BrokerId,
        event: &Event,
        stats: &mut MatchStats,
    ) -> Vec<SubscriptionId> {
        self.engines[broker.index()].match_subscriptions(event, stats)
    }

    /// One hop of the protocol: the links `broker` forwards `event` on for
    /// spanning tree `tree`. Used by the discrete-event simulator and the
    /// broker prototype, which drive propagation themselves.
    pub fn route_at(
        &self,
        broker: BrokerId,
        event: &Event,
        tree: TreeId,
        stats: &mut MatchStats,
    ) -> Vec<LinkId> {
        self.engines[broker.index()].match_links(event, tree, stats)
    }
}

impl EventRouter for ContentRouter {
    fn subscribe(&mut self, client: ClientId, predicate: Predicate) -> Result<SubscriptionId> {
        let home = self
            .fabric
            .network()
            .home_broker(client)
            .ok_or_else(|| CoreError::Unknown(format!("client {client}")))?;
        let id = SubscriptionId::new(self.next_subscription);
        let subscription = Subscription::new(id, SubscriberId::new(home, client), predicate);
        // "Each broker in the network has a copy of all the subscriptions."
        for engine in &mut self.engines {
            engine.subscribe(subscription.clone())?;
        }
        self.next_subscription += 1;
        Ok(id)
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let mut removed = false;
        for engine in &mut self.engines {
            removed |= engine.unsubscribe(id);
        }
        removed
    }

    fn publish(&self, broker: BrokerId, event: &Event) -> Result<Delivery> {
        let tree = self.fabric.tree_for(broker)?;
        let network = self.fabric.network();
        let mut delivery = Delivery::default();
        // Hop-by-hop propagation along the spanning tree.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((broker, 0u32));
        while let Some((at, hops)) = queue.pop_front() {
            let mut stats = MatchStats::new();
            let links = self.engines[at.index()].match_links(event, tree, &mut stats);
            delivery.record_hop(at, hops, stats.steps);
            for link in links {
                match network.link_target(at, link) {
                    LinkTarget::Broker(next) => {
                        delivery.broker_messages += 1;
                        queue.push_back((next, hops + 1));
                    }
                    LinkTarget::Client(client) => {
                        delivery.client_messages += 1;
                        delivery.recipients.push(client);
                    }
                }
            }
        }
        Ok(delivery.finish())
    }

    fn subscription_count(&self) -> usize {
        self.engines
            .first()
            .map_or(0, LinkMatchEngine::subscription_count)
    }
}

/// Helper shared by routers and tests: which links of `broker` lead to its
/// children in `tree` (the flooding protocol forwards on all of them).
pub(crate) fn child_links(
    network: &BrokerNetwork,
    tree: &crate::SpanningTree,
    broker: BrokerId,
) -> Vec<LinkId> {
    tree.children(broker)
        .iter()
        .map(|child| {
            network
                .link_to_broker(broker, *child)
                .expect("tree edges are network links")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    #[test]
    fn rebuild_excluding_preserves_network_and_reroots_trees() {
        let mut b = NetworkBuilder::new();
        let ids = b.add_brokers(4);
        b.connect(ids[0], ids[1], 10.0).unwrap();
        b.connect(ids[1], ids[2], 10.0).unwrap();
        b.connect(ids[2], ids[3], 10.0).unwrap();
        b.connect(ids[3], ids[0], 10.0).unwrap();
        for &id in &ids {
            b.add_client(id).unwrap();
        }
        let net = b.build().unwrap();
        let fabric = RoutingFabric::new_all_roots(net).unwrap();
        let repaired = fabric.rebuild_excluding(&[(ids[0], ids[1])]).unwrap();
        // The network (and its link numbering) is untouched; only the
        // forest changes, recomputed for the same root set.
        assert_eq!(
            repaired.network().link_count(ids[0]),
            fabric.network().link_count(ids[0])
        );
        let roots: Vec<BrokerId> = fabric.network().brokers().collect();
        assert_eq!(repaired.forest().roots(), roots);
        let tree = repaired
            .forest()
            .tree(repaired.tree_for(ids[0]).unwrap())
            .unwrap();
        assert_eq!(tree.parent(ids[1]), Some(ids[2]));
        // Rebuilding with no exclusions reproduces the original forest.
        let same = fabric.rebuild_excluding(&[]).unwrap();
        for &root in &roots {
            let a = fabric
                .forest()
                .tree(fabric.tree_for(root).unwrap())
                .unwrap();
            let b = same.forest().tree(same.tree_for(root).unwrap()).unwrap();
            assert_eq!(a, b);
        }
    }
}
