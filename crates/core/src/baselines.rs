//! The two straightforward alternatives the paper compares against (§1, §5):
//! flooding and match-first.

use std::sync::Arc;

use linkcast_matching::{MatchStats, Matcher, Pst, PstOptions};
use linkcast_types::{
    BrokerId, ClientId, Event, EventSchema, Predicate, SubscriberId, Subscription, SubscriptionId,
};

use crate::router::child_links;
use crate::{CoreError, Delivery, EventRouter, LinkTarget, Result, RoutingFabric};

/// The **flooding** baseline: "the message is broadcast or flooded to all
/// destinations using standard multicast technology and unwanted messages
/// are filtered out at these destinations."
///
/// Every broker receives every event (one copy per spanning-tree link) and
/// forwards it to **all** of its clients; filtering happens *at the
/// clients*, exactly as the paper describes — brokers do no content
/// matching at all. The wasted broker-to-broker and broker-to-client
/// traffic is the protocol's cost — the quantity Chart 1 shows saturating
/// the network.
///
/// [`Delivery::recipients`] reports the post-filter outcome (what the
/// clients keep), so correctness comparisons against the other protocols
/// hold; [`Delivery::client_messages`] reports the pre-filter copies
/// actually sent.
#[derive(Debug)]
pub struct FloodingRouter {
    fabric: Arc<RoutingFabric>,
    /// Per-broker view of local subscriptions — this models the *clients'*
    /// own filters, not broker work.
    local: Vec<Pst>,
    next_subscription: u32,
}

impl FloodingRouter {
    /// Creates a flooding router over `fabric`.
    ///
    /// # Errors
    ///
    /// Any PST construction error.
    pub fn new(
        fabric: Arc<RoutingFabric>,
        schema: EventSchema,
        options: PstOptions,
    ) -> Result<Self> {
        let local = fabric
            .network()
            .brokers()
            .map(|_| Pst::new(schema.clone(), options.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FloodingRouter {
            fabric,
            local,
            next_subscription: 0,
        })
    }

    /// One hop of the flooding protocol: every spanning-tree child link plus
    /// **every** local client link — no content matching at the broker
    /// (clients filter for themselves). Used by the discrete-event
    /// simulator; the service-time model correctly charges the broker for
    /// the send fan-out only.
    pub fn route_at(
        &self,
        broker: BrokerId,
        _event: &Event,
        tree: crate::TreeId,
        stats: &mut MatchStats,
    ) -> Vec<linkcast_types::LinkId> {
        stats.events += 1;
        let network = self.fabric.network();
        let tree = self
            .fabric
            .forest()
            .tree(tree)
            .expect("tree ids from the forest are valid");
        let mut links = child_links(network, tree, broker);
        for client in network.clients_of(broker) {
            links.push(
                network
                    .link_to_client(broker, *client)
                    .expect("local clients have links"),
            );
        }
        links.sort_unstable();
        links.dedup();
        links
    }
}

impl EventRouter for FloodingRouter {
    fn subscribe(&mut self, client: ClientId, predicate: Predicate) -> Result<SubscriptionId> {
        let home = self
            .fabric
            .network()
            .home_broker(client)
            .ok_or_else(|| CoreError::Unknown(format!("client {client}")))?;
        let id = SubscriptionId::new(self.next_subscription);
        // Only the client's home broker needs the subscription: filtering
        // happens at the edge.
        self.local[home.index()].insert(Subscription::new(
            id,
            SubscriberId::new(home, client),
            predicate,
        ))?;
        self.next_subscription += 1;
        Ok(id)
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.local.iter_mut().any(|pst| pst.remove(id))
    }

    fn publish(&self, broker: BrokerId, event: &Event) -> Result<Delivery> {
        let tree_id = self.fabric.tree_for(broker)?;
        let tree = self
            .fabric
            .forest()
            .tree(tree_id)
            .expect("tree ids from the forest are valid");
        let network = self.fabric.network();
        let mut delivery = Delivery::default();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((broker, 0u32));
        while let Some((at, hops)) = queue.pop_front() {
            // The broker does no matching: every local client gets a copy.
            delivery.record_hop(at, hops, 0);
            delivery.client_messages += network.clients_of(at).len() as u64;
            // The *clients* filter: only matching subscribers keep the
            // event (modeled by the local subscription view).
            let mut stats = MatchStats::new();
            for sub_id in self.local[at.index()].matches_with_stats(event, &mut stats) {
                let sub = self.local[at.index()]
                    .subscription(sub_id)
                    .expect("matched ids are registered");
                delivery.recipients.push(sub.subscriber().client);
            }
            // Flood: forward on every tree link regardless of content.
            for link in child_links(network, tree, at) {
                match network.link_target(at, link) {
                    LinkTarget::Broker(next) => {
                        delivery.broker_messages += 1;
                        queue.push_back((next, hops + 1));
                    }
                    LinkTarget::Client(_) => unreachable!("child links lead to brokers"),
                }
            }
        }
        Ok(delivery.finish())
    }

    fn subscription_count(&self) -> usize {
        self.local.iter().map(Pst::len).sum()
    }
}

/// The **match-first** baseline: "the event is first matched against all
/// subscriptions, thus generating a destination list and the event is then
/// routed to all entries on this list."
///
/// The publisher's broker runs the full §2 match once, then the event
/// travels with an explicit destination list that each broker splits among
/// its spanning-tree children. [`Delivery::payload_units`] counts the
/// destination entries carried across broker links — the per-message
/// overhead that "makes the approach impractical" at scale.
#[derive(Debug)]
pub struct MatchFirstRouter {
    fabric: Arc<RoutingFabric>,
    /// The full subscription set (one copy is enough: matching happens only
    /// at the publishing broker).
    full: Pst,
    next_subscription: u32,
}

impl MatchFirstRouter {
    /// Creates a match-first router over `fabric`.
    ///
    /// # Errors
    ///
    /// Any PST construction error.
    pub fn new(
        fabric: Arc<RoutingFabric>,
        schema: EventSchema,
        options: PstOptions,
    ) -> Result<Self> {
        Ok(MatchFirstRouter {
            fabric,
            full: Pst::new(schema, options)?,
            next_subscription: 0,
        })
    }
}

impl EventRouter for MatchFirstRouter {
    fn subscribe(&mut self, client: ClientId, predicate: Predicate) -> Result<SubscriptionId> {
        let home = self
            .fabric
            .network()
            .home_broker(client)
            .ok_or_else(|| CoreError::Unknown(format!("client {client}")))?;
        let id = SubscriptionId::new(self.next_subscription);
        self.full.insert(Subscription::new(
            id,
            SubscriberId::new(home, client),
            predicate,
        ))?;
        self.next_subscription += 1;
        Ok(id)
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.full.remove(id)
    }

    fn publish(&self, broker: BrokerId, event: &Event) -> Result<Delivery> {
        let tree_id = self.fabric.tree_for(broker)?;
        let tree = self
            .fabric
            .forest()
            .tree(tree_id)
            .expect("tree ids from the forest are valid");
        let network = self.fabric.network();
        let mut delivery = Delivery::default();

        // One full match at the publishing broker.
        let mut stats = MatchStats::new();
        let matched = self.full.matches_with_stats(event, &mut stats);
        delivery.record_hop(broker, 0, stats.steps);
        let mut destinations: Vec<ClientId> = matched
            .iter()
            .map(|id| {
                self.full
                    .subscription(*id)
                    .expect("matched ids are registered")
                    .subscriber()
                    .client
            })
            .collect();
        destinations.sort_unstable();
        destinations.dedup();

        // Route the destination list along the tree.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((broker, 1u32, destinations));
        while let Some((at, hops, dests)) = queue.pop_front() {
            let mut per_child: std::collections::BTreeMap<BrokerId, Vec<ClientId>> =
                std::collections::BTreeMap::new();
            for client in dests {
                let home = network.home_broker(client).expect("destinations exist");
                if home == at {
                    delivery.client_messages += 1;
                    delivery.recipients.push(client);
                } else if let Some(child) = tree.child_toward(at, home) {
                    per_child.entry(child).or_default().push(client);
                }
                // Destinations not downstream cannot occur: the publisher's
                // broker is the tree root.
            }
            for (child, sublist) in per_child {
                delivery.broker_messages += 1;
                delivery.payload_units += sublist.len() as u64;
                delivery.max_hops = delivery.max_hops.max(hops);
                queue.push_back((child, hops + 1, sublist));
            }
        }
        Ok(delivery.finish())
    }

    fn subscription_count(&self) -> usize {
        self.full.len()
    }
}
