//! The per-broker link-matching engine: an annotated parallel search tree.

use std::collections::HashMap;

use linkcast_matching::{MatchStats, Matcher, NodeId, ParallelScratch, Pst, PstOptions};
use linkcast_types::{ClientId, Event, EventSchema, LinkId, Subscription, SubscriptionId, TritVec};

use crate::{LinkSpace, MatchArena, MatchScratch, Result, TreeId};

/// Reusable buffers for the engine's allocation-free match paths: the
/// arena walk's mask pool, the parallel walk's frontier/worker buffers,
/// and the parallel path's matched-set and `Yes`-accumulator vectors.
/// Owned per matching shard (or per bench thread) and handed down by
/// `&mut` — shard-private plain data, no lock.
#[derive(Debug)]
pub struct RouteScratch {
    walk: MatchScratch,
    parallel: ParallelScratch,
    matched: Vec<SubscriptionId>,
    yes: TritVec,
    absorbed: TritVec,
}

impl RouteScratch {
    /// A fresh, empty scratch set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for RouteScratch {
    fn default() -> Self {
        RouteScratch {
            walk: MatchScratch::new(),
            parallel: ParallelScratch::new(),
            matched: Vec::new(),
            yes: TritVec::no(0),
            absorbed: TritVec::no(0),
        }
    }
}

/// One broker's routing engine (§3): the full subscription set organized as
/// a PST, annotated with trit vectors over the broker's [`LinkSpace`], plus
/// the mask-refinement search of §3.3 that decides which links receive an
/// event.
///
/// "Each broker in the network has a copy of all the subscriptions,
/// organized into a PST" (§3.1) — the engine *is* that copy, specialized to
/// its broker's outgoing links.
///
/// # Example
///
/// ```
/// use linkcast::{NetworkBuilder, SpanningForest, LinkSpace, LinkMatchEngine};
/// use linkcast_matching::PstOptions;
/// use linkcast_types::{EventSchema, ValueKind, Value, Event, Predicate,
///     Subscription, SubscriptionId, SubscriberId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let b0 = b.add_broker();
/// let b1 = b.add_broker();
/// b.connect(b0, b1, 10.0)?;
/// let alice = b.add_client(b1)?;
/// let network = b.build()?;
/// let forest = SpanningForest::compute(&network, &[b0])?;
/// let tree = forest.tree_for_root(b0).unwrap();
///
/// let schema = EventSchema::builder("s")
///     .attribute("x", ValueKind::Int)
///     .build()?;
/// let space = LinkSpace::build(&network, &forest, b0);
/// let mut engine = LinkMatchEngine::new(b0, schema.clone(), PstOptions::default(), space)?;
///
/// engine.subscribe(Subscription::new(
///     SubscriptionId::new(0),
///     SubscriberId::new(b1, alice),
///     Predicate::builder(&schema).eq("x", Value::Int(7))?.build(),
/// ))?;
///
/// let hit = Event::from_values(&schema, [Value::Int(7)])?;
/// let miss = Event::from_values(&schema, [Value::Int(8)])?;
/// assert_eq!(engine.match_links_simple(&hit, tree).len(), 1);
/// assert!(engine.match_links_simple(&miss, tree).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinkMatchEngine {
    broker: linkcast_types::BrokerId,
    space: LinkSpace,
    pst: Pst,
    /// Annotation per PST node, indexed by [`NodeId::index`].
    annotations: Vec<Option<TritVec>>,
    /// Memoized leaf vectors per subscriber client.
    leaf_cache: HashMap<ClientId, TritVec>,
    /// The flattened match-time view of `pst` + `annotations`, kept in
    /// lock-step with them on every mutation.
    arena: MatchArena,
    /// Bumped on every subscription add/remove/re-annotation; a
    /// [`MatchCache`](crate::MatchCache) keyed under an old generation
    /// flushes itself on its next lookup.
    generation: u64,
}

impl LinkMatchEngine {
    /// Creates an engine for `broker` with an empty subscription set.
    ///
    /// # Errors
    ///
    /// Any PST construction error (see [`Pst::new`]).
    pub fn new(
        broker: linkcast_types::BrokerId,
        schema: EventSchema,
        options: PstOptions,
        space: LinkSpace,
    ) -> Result<Self> {
        let pst = Pst::new(schema, options)?;
        let arena = MatchArena::build(&pst, &[], &space);
        Ok(LinkMatchEngine {
            broker,
            space,
            pst,
            annotations: Vec::new(),
            leaf_cache: HashMap::new(),
            arena,
            generation: 0,
        })
    }

    /// Creates an engine pre-loaded with a subscription set (the attribute
    /// order heuristic, if configured, derives from this set).
    ///
    /// # Errors
    ///
    /// Any PST construction or insertion error.
    pub fn with_subscriptions(
        broker: linkcast_types::BrokerId,
        schema: EventSchema,
        options: PstOptions,
        space: LinkSpace,
        subscriptions: impl IntoIterator<Item = Subscription>,
    ) -> Result<Self> {
        let pst = Pst::build(schema, subscriptions, options)?;
        let mut engine = LinkMatchEngine {
            broker,
            space,
            pst,
            annotations: Vec::new(),
            leaf_cache: HashMap::new(),
            arena: MatchArena::default(),
            generation: 0,
        };
        engine.annotate_all();
        engine.rebuild_arena();
        Ok(engine)
    }

    /// The broker this engine routes for.
    pub fn broker(&self) -> linkcast_types::BrokerId {
        self.broker
    }

    /// The engine's link space.
    pub fn space(&self) -> &LinkSpace {
        &self.space
    }

    /// The underlying (annotated) parallel search tree.
    pub fn pst(&self) -> &Pst {
        &self.pst
    }

    /// Number of registered subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.pst.len()
    }

    /// Registers a subscription and incrementally re-annotates the paths it
    /// touched.
    ///
    /// # Errors
    ///
    /// Duplicate ids or schema mismatches, from the PST.
    pub fn subscribe(&mut self, subscription: Subscription) -> Result<()> {
        let report = self.pst.insert_reported(subscription)?;
        for path in &report.paths {
            self.annotate_path(path);
        }
        self.generation += 1;
        if !self
            .arena
            .apply_mutation(&self.pst, &report, &self.annotations)
        {
            self.rebuild_arena();
        }
        Ok(())
    }

    /// Removes a subscription, pruning and re-annotating. Returns whether
    /// the id was registered.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let Some(report) = self.pst.remove_reported(id) else {
            return false;
        };
        for freed in &report.freed {
            if let Some(slot) = self.annotations.get_mut(freed.index()) {
                *slot = None;
            }
        }
        for path in &report.paths {
            self.annotate_path(path);
        }
        self.generation += 1;
        if !self
            .arena
            .apply_mutation(&self.pst, &report, &self.annotations)
        {
            self.rebuild_arena();
        }
        true
    }

    /// The annotation of a PST node, if computed.
    pub fn annotation(&self, id: NodeId) -> Option<&TritVec> {
        self.annotations.get(id.index()).and_then(|a| a.as_ref())
    }

    /// Link matching (§3.3): refines `tree`'s initialization mask through
    /// the annotated PST until no `Maybe` remains, returning the physical
    /// links the event must be forwarded on (broker links and/or local
    /// client links).
    pub fn match_links(&self, event: &Event, tree: TreeId, stats: &mut MatchStats) -> Vec<LinkId> {
        stats.events += 1;
        let mask = self.space.init_mask(tree).clone();
        if !mask.has_maybe() {
            // Nothing is downstream of this broker on this tree.
            return Vec::new();
        }
        let Some(root) = self.pst.root_for_event(event) else {
            // No subscription exists under the event's factor key.
            return Vec::new();
        };
        let refined = self.subsearch(root, mask, event, stats);
        self.space.links_to_send(&refined)
    }

    /// [`match_links`](Self::match_links) without stats collection.
    pub fn match_links_simple(&self, event: &Event, tree: TreeId) -> Vec<LinkId> {
        let mut stats = MatchStats::new();
        self.match_links(event, tree, &mut stats)
    }

    /// [`match_links`](Self::match_links) over the flattened
    /// [`MatchArena`]: the same §3.3 refinement as an explicit work-stack
    /// walk over contiguous index arrays, drawing every mask from
    /// `scratch` and writing the link set into `out` (cleared first). The
    /// steady-state path allocates nothing.
    pub fn match_links_into(
        &self,
        event: &Event,
        tree: TreeId,
        scratch: &mut RouteScratch,
        stats: &mut MatchStats,
        out: &mut Vec<LinkId>,
    ) {
        out.clear();
        stats.events += 1;
        let init = self.space.init_mask(tree);
        if !init.has_maybe() {
            // Nothing is downstream of this broker on this tree.
            return;
        }
        scratch.walk.seed(init);
        if !self.arena.search(event, &mut scratch.walk, stats) {
            // No subscription exists under the event's factor key.
            return;
        }
        if let Some(refined) = scratch.walk.result() {
            self.space.links_to_send_into(refined, out);
        }
    }

    /// Link matching with the subtree walk fanned out over `threads` worker
    /// threads ([`Pst::matches_parallel`]). Produces the same link set as
    /// [`match_links`](Self::match_links): a link receives the event exactly
    /// when the initialization mask holds a `Maybe` at one of its positions
    /// and some matching subscription's leaf vector holds a `Yes` there —
    /// the parallel path computes the matching set first and absorbs the
    /// leaf vectors directly, instead of interleaving refinement with the
    /// walk.
    ///
    /// `threads <= 1` falls back to the sequential trit search (and
    /// [`Pst::matches_parallel`] itself stays sequential for small
    /// frontiers, so large trees gate the fan-out naturally).
    pub fn match_links_parallel(
        &self,
        event: &Event,
        tree: TreeId,
        threads: usize,
        stats: &mut MatchStats,
    ) -> Vec<LinkId> {
        if threads <= 1 {
            // Keep the allocating single-thread path on the recursive
            // boxed-tree search; the arena walk is reached through
            // [`match_links_into`](Self::match_links_into).
            return self.match_links(event, tree, stats);
        }
        let mut scratch = RouteScratch::new();
        let mut out = Vec::new();
        self.match_links_parallel_into(event, tree, threads, &mut scratch, stats, &mut out);
        out
    }

    /// [`match_links_parallel`](Self::match_links_parallel) drawing every
    /// buffer — the walk frontier, per-worker stacks, the matched set, and
    /// the `Yes` accumulator — from `scratch`, writing the link set into
    /// `out` (cleared first). `threads <= 1` falls back to the sequential
    /// arena walk ([`match_links_into`](Self::match_links_into)).
    pub fn match_links_parallel_into(
        &self,
        event: &Event,
        tree: TreeId,
        threads: usize,
        scratch: &mut RouteScratch,
        stats: &mut MatchStats,
        out: &mut Vec<LinkId>,
    ) {
        if threads <= 1 {
            self.match_links_into(event, tree, scratch, stats, out);
            return;
        }
        out.clear();
        stats.events += 1;
        let mask = self.space.init_mask(tree);
        if !mask.has_maybe() {
            return;
        }
        // matches_parallel counts its own `events` on one early-return
        // path; merge through a scratch accumulator to count exactly once.
        let mut walk_stats = MatchStats::new();
        self.pst.matches_parallel_into(
            event,
            threads,
            &mut walk_stats,
            &mut scratch.parallel,
            &mut scratch.matched,
        );
        stats.steps += walk_stats.steps;
        stats.comparisons += walk_stats.comparisons;
        stats.leaf_hits += walk_stats.leaf_hits;
        if scratch.matched.is_empty() {
            return;
        }
        if scratch.yes.len() == self.space.width() {
            scratch.yes.fill_no();
        } else {
            scratch.yes = TritVec::no(self.space.width());
        }
        for id in &scratch.matched {
            let client = self
                .pst
                .subscription(*id)
                .expect("matched subscriptions are registered")
                .subscriber()
                .client;
            match self.leaf_cache.get(&client) {
                Some(leaf) => scratch.yes.parallel_in_place(leaf),
                None => scratch
                    .yes
                    .parallel_in_place(&self.space.leaf_vector(client)),
            }
        }
        scratch.absorbed.clone_from(mask);
        scratch.absorbed.absorb_yes_in_place(&scratch.yes);
        self.space.links_to_send_into(&scratch.absorbed, out);
    }

    /// Runs the §2 centralized matching over the full tree (no trits),
    /// returning matched subscription ids — used by the match-first
    /// baseline and by the Chart 2 "centralized" series.
    pub fn match_subscriptions(
        &self,
        event: &Event,
        stats: &mut MatchStats,
    ) -> Vec<SubscriptionId> {
        self.pst.matches_with_stats(event, stats)
    }

    /// Looks up a registered subscription.
    pub fn subscription(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.pst.subscription(id)
    }

    /// The flattened match-time view of the annotated PST.
    pub fn arena(&self) -> &MatchArena {
        &self.arena
    }

    /// Monotonic subscription-set generation: bumped on every subscribe,
    /// unsubscribe, and re-annotation. A [`MatchCache`](crate::MatchCache)
    /// presents this on lookup; a mismatch flushes the cache, so no memoized
    /// result can outlive the subscription set it was computed under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The attribute indices that can influence this engine's match results
    /// (sorted) — the correct and minimal match-cache key schema.
    pub fn tested_attributes(&self) -> &[usize] {
        self.arena.tested_attributes()
    }

    /// Recompiles the arena from the current PST and annotations.
    fn rebuild_arena(&mut self) {
        self.arena = MatchArena::build(&self.pst, &self.annotations, &self.space);
    }

    fn subsearch(
        &self,
        id: NodeId,
        mask: TritVec,
        event: &Event,
        stats: &mut MatchStats,
    ) -> TritVec {
        stats.steps += 1;
        let annotation = self.annotations[id.index()]
            .as_ref()
            .expect("live nodes are annotated");
        // §3.3 step 2: replace every Maybe by the node's annotation trit.
        let mut mask = mask.refine(annotation);
        if !mask.has_maybe() {
            return mask;
        }
        let node = self.pst.node(id);
        debug_assert!(
            !node.is_leaf(),
            "leaf annotations are Yes/No-only, so refinement terminates there"
        );
        let attr = node.attribute().expect("interior node tests an attribute");
        let value = &event.values()[attr];

        // §3.3 step 3: subsearch each applicable child with a copy of the
        // mask, absorbing Yes trits as subsearches return.
        stats.comparisons += 1;
        if let Some(child) = node.eq_child(value) {
            let sub = self.subsearch(child, mask.clone(), event, stats);
            mask = mask.absorb_yes(&sub);
            if !mask.has_maybe() {
                return mask;
            }
        }
        for (test, child) in node.range_edges() {
            stats.comparisons += 1;
            if test.matches(value) {
                let sub = self.subsearch(*child, mask.clone(), event, stats);
                mask = mask.absorb_yes(&sub);
                if !mask.has_maybe() {
                    return mask;
                }
            }
        }
        if let Some(star) = node.star() {
            let sub = self.subsearch(star, mask.clone(), event, stats);
            mask = mask.absorb_yes(&sub);
        }
        // End of step 3: remaining Maybes become No.
        mask.maybes_to_no()
    }

    /// Recomputes every node's annotation (post-order, children first).
    fn annotate_all(&mut self) {
        self.annotations = vec![None; self.pst.arena_size()];
        for id in self.pst.postorder() {
            let v = self.compute_annotation(id);
            self.set_annotation(id, v);
        }
    }

    /// Re-annotates the nodes of one root-to-leaf path, bottom-up. Nodes off
    /// the path are unaffected by the mutation (a node's annotation depends
    /// only on its descendants).
    fn annotate_path(&mut self, path: &[NodeId]) {
        for &id in path.iter().rev() {
            let v = self.compute_annotation(id);
            self.set_annotation(id, v);
        }
    }

    fn set_annotation(&mut self, id: NodeId, v: TritVec) {
        if self.annotations.len() <= id.index() {
            self.annotations.resize(id.index() + 1, None);
        }
        self.annotations[id.index()] = Some(v);
    }

    /// §3.1: leaves get `Yes` per link reaching one of their subscribers;
    /// interior nodes combine children with *Alternative Combine* (value
    /// branches, plus an implicit all-`No` alternative when the branches do
    /// not exhaust the attribute's domain) and *Parallel Combine* (the `*`
    /// branch).
    fn compute_annotation(&self, id: NodeId) -> TritVec {
        let width = self.space.width();
        let node = self.pst.node(id);
        if node.is_leaf() {
            let mut v = TritVec::no(width);
            for sub_id in node.subscription_ids() {
                let sub = self
                    .pst
                    .subscription(*sub_id)
                    .expect("leaf subscriptions are registered");
                let client = sub.subscriber().client;
                let leaf = match self.leaf_cache.get(&client) {
                    Some(cached) => cached.clone(),
                    None => self.space.leaf_vector(client),
                };
                v = v.parallel(&leaf);
            }
            return v;
        }

        let child_ann = |child: NodeId| -> &TritVec {
            self.annotations[child.index()]
                .as_ref()
                .expect("children are annotated before parents")
        };
        let mut alt: Option<TritVec> = None;
        let fold = |v: &TritVec, alt: &mut Option<TritVec>| match alt {
            None => *alt = Some(v.clone()),
            Some(a) => *a = a.alternative(v),
        };
        for (_, child) in node.eq_edges() {
            fold(child_ann(*child), &mut alt);
        }
        for (_, child) in node.range_edges() {
            fold(child_ann(*child), &mut alt);
        }
        if !self.branches_exhaust_domain(&node) {
            fold(&TritVec::no(width), &mut alt);
        }
        let alt = alt.unwrap_or_else(|| TritVec::no(width));
        match node.star() {
            Some(star) => alt.parallel(child_ann(star)),
            None => alt,
        }
    }

    /// Whether a node's value branches cover every value of the tested
    /// attribute's (finite) domain. Attributes without declared domains are
    /// never exhaustive.
    fn branches_exhaust_domain(&self, node: &linkcast_matching::NodeRef<'_>) -> bool {
        let Some(attr) = node.attribute() else {
            return false;
        };
        let Some(domain) = self.pst.schema().attribute(attr).and_then(|a| a.domain()) else {
            return false;
        };
        domain.iter().all(|v| {
            node.eq_child(v).is_some() || node.range_edges().iter().any(|(t, _)| t.matches(v))
        })
    }

    /// Swaps in a new link space (topology repair) and rebuilds every
    /// derived structure: leaf vectors, annotations, and the flattened
    /// arena. The engine's generation counter keeps counting up from its
    /// current value, so match-cache entries minted under the old space
    /// are invalidated rather than aliased.
    pub fn rebuild_space(&mut self, space: LinkSpace) {
        self.space = space;
        self.rebuild_annotations();
    }

    /// Refreshes the leaf-vector cache (call after the link space changes;
    /// topology is otherwise static in this reproduction).
    pub fn rebuild_annotations(&mut self) {
        self.leaf_cache.clear();
        for client in self.collect_clients() {
            let v = self.space.leaf_vector(client);
            self.leaf_cache.insert(client, v);
        }
        self.annotate_all();
        self.generation += 1;
        self.rebuild_arena();
    }

    fn collect_clients(&self) -> Vec<ClientId> {
        let mut clients: Vec<ClientId> = self
            .pst
            .subscriptions()
            .map(|s| s.subscriber().client)
            .collect();
        clients.sort_unstable();
        clients.dedup();
        clients
    }
}
