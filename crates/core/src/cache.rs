//! Generation-invalidated match-result memoization.
//!
//! Real event streams repeat content: the same issue trades at the same
//! price band all day, and every repetition walks the same PST paths to the
//! same link set. The [`MatchCache`] memoizes (spanning tree, *tested*
//! event values) → link set, so repeated content costs one hash and an
//! equality probe instead of a tree walk.
//!
//! Two properties make this sound:
//!
//! - **Keys cover exactly the tested attributes.** The walk's branching
//!   can only depend on the factored attributes plus attributes with at
//!   least one equality/range edge somewhere in the tree
//!   ([`MatchArena::tested_attributes`](crate::MatchArena::tested_attributes));
//!   star-only attributes cannot change the result. Keying on *all*
//!   attributes would be equally sound but would shatter the hit rate —
//!   two events differing only in an untested attribute must share an
//!   entry. Keying on *fewer* would be unsound.
//! - **Generation invalidation.** The owning engine bumps a generation
//!   counter on every subscription add/remove/re-annotation. A lookup
//!   under a different generation flushes the whole cache before probing,
//!   so a stale hit is impossible by construction — there is no window
//!   where an entry computed under an old subscription set can answer a
//!   query, and the tested-attribute set (which can itself change with the
//!   tree's shape) is always consulted at the current generation.
//!
//! Stored keys are the exact value sequences, not just their hashes: a
//! 64-bit fingerprint collision must degrade to a miss, never misroute an
//! event. The cache is bounded; at capacity it flushes wholesale (the
//! steady state that matters — a hot working set smaller than the cap —
//! never reaches the bound, and flush keeps the structure allocation-light
//! compared to per-entry eviction bookkeeping).
//!
//! Ownership: one cache per matching shard (plus one for the inline path),
//! living *outside* the engine's `RwLock` beside the shard's scratch pool —
//! shard-owned plain data, no new locks.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use linkcast_matching::MatchStats;
use linkcast_types::{Event, LinkId, Value};

use crate::TreeId;

/// A bounded memo of (schema, spanning tree, tested event values) → links.
#[derive(Debug, Clone)]
pub struct MatchCache {
    /// Maximum resident entries; `0` disables the cache entirely.
    cap: usize,
    /// Engine generation the resident entries were computed under.
    generation: u64,
    /// Resident entry count (buckets hold few entries each).
    len: usize,
    /// Fingerprint → colliding entries, compared exactly on probe.
    buckets: HashMap<u64, Vec<CacheEntry>>,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    schema: usize,
    tree: TreeId,
    /// The event's values at the tested attributes, in sorted-attribute
    /// order — the exact key, so fingerprint collisions stay misses.
    values: Box<[Value]>,
    links: Vec<LinkId>,
}

impl MatchCache {
    /// A cache bounded to `cap` entries; `cap == 0` disables it.
    pub fn new(cap: usize) -> Self {
        MatchCache {
            cap,
            generation: 0,
            len: 0,
            buckets: HashMap::new(),
        }
    }

    /// Whether the cache participates at all.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Probes for `event`'s memoized link set. `generation` is the owning
    /// engine's current generation: a mismatch flushes everything first
    /// (counted once into `stats.cache_invalidations` when entries were
    /// dropped), making stale hits impossible. Counts a hit or a miss.
    pub fn lookup(
        &mut self,
        generation: u64,
        schema: usize,
        tree: TreeId,
        event: &Event,
        tested: &[usize],
        stats: &mut MatchStats,
    ) -> Option<&[LinkId]> {
        if !self.enabled() {
            return None;
        }
        self.sync_generation(generation, stats);
        let fp = fingerprint(schema, tree, event, tested);
        let values = event.values();
        let entry = self.buckets.get(&fp).and_then(|bucket| {
            bucket.iter().find(|e| {
                e.schema == schema && e.tree == tree && key_matches(&e.values, values, tested)
            })
        });
        match entry {
            Some(e) => {
                stats.cache_hits += 1;
                Some(&e.links)
            }
            None => {
                stats.cache_misses += 1;
                None
            }
        }
    }

    /// Memoizes a freshly computed link set. Clones the tested values once
    /// (the only allocation the cache performs per new key). At capacity
    /// the cache flushes wholesale before admitting the entry.
    pub fn insert(
        &mut self,
        generation: u64,
        schema: usize,
        tree: TreeId,
        event: &Event,
        tested: &[usize],
        links: &[LinkId],
    ) {
        if !self.enabled() {
            return;
        }
        if self.generation != generation {
            self.buckets.clear();
            self.len = 0;
            self.generation = generation;
        }
        if self.len >= self.cap {
            self.buckets.clear();
            self.len = 0;
        }
        let fp = fingerprint(schema, tree, event, tested);
        let values = event.values();
        let key: Box<[Value]> = tested
            .iter()
            .filter_map(|&attr| values.get(attr).cloned())
            .collect();
        self.buckets.entry(fp).or_default().push(CacheEntry {
            schema,
            tree,
            values: key,
            links: links.to_vec(),
        });
        self.len += 1;
    }

    /// Adopts `generation`, flushing stale entries (and counting the flush)
    /// if the resident ones were computed under an older subscription set.
    fn sync_generation(&mut self, generation: u64, stats: &mut MatchStats) {
        if self.generation == generation {
            return;
        }
        if self.len > 0 {
            stats.cache_invalidations += 1;
        }
        self.buckets.clear();
        self.len = 0;
        self.generation = generation;
    }
}

/// Whether a stored key equals the event's tested values, element-wise.
fn key_matches(key: &[Value], values: &[Value], tested: &[usize]) -> bool {
    key.len() == tested.len()
        && key
            .iter()
            .zip(tested)
            .all(|(k, &attr)| values.get(attr) == Some(k))
}

/// Hashes the borrowed tested values (plus schema and tree) without
/// building an owned key. Owned keys hash element-wise the same way, so
/// probe and insert agree.
fn fingerprint(schema: usize, tree: TreeId, event: &Event, tested: &[usize]) -> u64 {
    let mut h = DefaultHasher::new();
    schema.hash(&mut h);
    tree.index().hash(&mut h);
    let values = event.values();
    for &attr in tested {
        values.get(attr).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> linkcast_types::EventSchema {
        linkcast_types::EventSchema::builder("cache")
            .attribute("a", linkcast_types::ValueKind::Int)
            .attribute("b", linkcast_types::ValueKind::Int)
            .build()
            .unwrap()
    }

    fn event(a: i64, b: i64) -> Event {
        Event::from_values(&schema(), [Value::Int(a), Value::Int(b)]).unwrap()
    }

    fn tree() -> TreeId {
        TreeId::from_index(0)
    }

    #[test]
    fn hit_after_insert_same_generation() {
        let mut cache = MatchCache::new(8);
        let mut stats = MatchStats::new();
        let tested = [0usize];
        let links = vec![LinkId::new(3)];
        assert!(cache
            .lookup(1, 0, tree(), &event(7, 0), &tested, &mut stats)
            .is_none());
        cache.insert(1, 0, tree(), &event(7, 0), &tested, &links);
        // Same tested value, different untested value: must hit.
        let hit = cache
            .lookup(1, 0, tree(), &event(7, 99), &tested, &mut stats)
            .map(<[LinkId]>::to_vec);
        assert_eq!(hit, Some(links));
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_invalidations, 0);
    }

    #[test]
    fn generation_change_flushes_and_counts() {
        let mut cache = MatchCache::new(8);
        let mut stats = MatchStats::new();
        let tested = [0usize, 1usize];
        cache.insert(1, 0, tree(), &event(1, 2), &tested, &[LinkId::new(0)]);
        assert_eq!(cache.len(), 1);
        assert!(cache
            .lookup(2, 0, tree(), &event(1, 2), &tested, &mut stats)
            .is_none());
        assert_eq!(stats.cache_invalidations, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!(cache.is_empty());
        // Adopting the same generation again does not count another flush.
        assert!(cache
            .lookup(2, 0, tree(), &event(1, 2), &tested, &mut stats)
            .is_none());
        assert_eq!(stats.cache_invalidations, 1);
    }

    #[test]
    fn disabled_cache_never_hits_or_counts() {
        let mut cache = MatchCache::new(0);
        let mut stats = MatchStats::new();
        cache.insert(1, 0, tree(), &event(1, 2), &[0], &[LinkId::new(0)]);
        assert!(cache
            .lookup(1, 0, tree(), &event(1, 2), &[0], &mut stats)
            .is_none());
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert!(!cache.enabled());
    }

    #[test]
    fn capacity_flushes_wholesale() {
        let mut cache = MatchCache::new(2);
        let mut stats = MatchStats::new();
        let tested = [0usize];
        for a in 0..3 {
            cache.insert(1, 0, tree(), &event(a, 0), &tested, &[LinkId::new(0)]);
        }
        // Third insert flushed the first two; only it remains.
        assert_eq!(cache.len(), 1);
        assert!(cache
            .lookup(1, 0, tree(), &event(2, 0), &tested, &mut stats)
            .is_some());
        assert!(cache
            .lookup(1, 0, tree(), &event(0, 0), &tested, &mut stats)
            .is_none());
    }

    #[test]
    fn distinct_schema_or_tree_do_not_collide() {
        let mut cache = MatchCache::new(8);
        let mut stats = MatchStats::new();
        let tested = [0usize];
        cache.insert(1, 0, tree(), &event(5, 0), &tested, &[LinkId::new(1)]);
        assert!(cache
            .lookup(1, 1, tree(), &event(5, 0), &tested, &mut stats)
            .is_none());
        assert!(cache
            .lookup(
                1,
                0,
                TreeId::from_index(1),
                &event(5, 0),
                &tested,
                &mut stats
            )
            .is_none());
    }
}
