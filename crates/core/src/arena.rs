//! Arena-flattened link-matching: the annotated PST compiled into a
//! contiguous struct-of-arrays index space.
//!
//! The boxed PST is the right structure for *mutation* (subscribe /
//! unsubscribe), but a match walk over it chases `Box` and `HashMap`
//! pointers and clones a fresh `TritVec` per child recursion. The
//! [`MatchArena`] is the match-time view of the same tree: node fields live
//! in parallel vectors indexed by a dense `u32`, edge lists are index spans
//! into shared edge arrays, and every node's trit annotation occupies a
//! fixed-width slot in one contiguous word slab. A search is then
//! sequential index arithmetic plus word ops against the slab, with all
//! masks drawn from a reusable [`MatchScratch`] pool — no allocation per
//! event, no pointer chasing, no per-child mask clone.
//!
//! Trivial-test skip pointers (§2.1.2) are resolved at build time: every
//! edge stores its *effective* target, so `*`-only chains cost nothing at
//! match time. This preserves results because a trivial node's annotation
//! equals its star child's annotation (the alternative fold over zero value
//! branches contributes all-`No`, the identity of *Parallel Combine*), and
//! refinement is idempotent over equal annotations.
//!
//! The arena is rebuilt from the PST on structural mutations and patched in
//! place (annotation slots only) when a mutation touches existing nodes
//! without allocating or freeing any — the common case for churn against a
//! populated tree.

use linkcast_matching::{MatchStats, MutationReport, NodeId, Pst};
use linkcast_types::{AttrTest, Event, TritVec, Value};

use crate::LinkSpace;

/// Sentinel for "no node" in `u32` index fields.
const NONE: u32 = u32::MAX;

/// The flattened, annotated match-time form of one engine's PST.
#[derive(Debug, Clone, Default)]
pub struct MatchArena {
    /// Trits per annotation/mask (the link-space width).
    width: usize,
    /// Words per annotation slot in [`ann_words`](Self::ann_words).
    words_per_mask: usize,
    /// Per-node attribute index tested at the node; `NONE` for leaves.
    attr: Vec<u32>,
    /// Per-node span `[start, end)` into `eq_values` / `eq_children`.
    eq_span: Vec<(u32, u32)>,
    /// Per-node span `[start, end)` into `range_tests` / `range_children`.
    range_span: Vec<(u32, u32)>,
    /// Per-node `*` child; `NONE` if absent.
    star: Vec<u32>,
    /// Equality edge labels, sorted within each node's span.
    eq_values: Vec<Value>,
    /// Equality edge targets (skip-resolved), parallel to `eq_values`.
    eq_children: Vec<u32>,
    /// Range edge labels.
    range_tests: Vec<AttrTest>,
    /// Range edge targets (skip-resolved), parallel to `range_tests`.
    range_children: Vec<u32>,
    /// Annotation slab: node `i`'s trits at
    /// `[i * words_per_mask, (i + 1) * words_per_mask)`.
    ann_words: Vec<u64>,
    /// Factored-subtree roots (skip-resolved), sorted by key for
    /// borrow-keyed binary search against event values.
    roots: Vec<(Box<[Value]>, u32)>,
    /// Factored attribute indices (the root-key schema).
    factored: Vec<usize>,
    /// PST `NodeId::index()` → arena index; `NONE` for dead/unknown slots.
    map: Vec<u32>,
    /// Attribute indices that can influence the walk's branching: the
    /// factored attributes plus every `order` attribute whose level has at
    /// least one equality or range edge somewhere in the tree. Sorted.
    /// Attributes outside this set cannot change the match result, which is
    /// exactly why the match-result cache keys on these and only these.
    tested: Vec<usize>,
    /// Upper bound on the walk's stack depth (root-to-leaf node count).
    max_depth: usize,
}

impl MatchArena {
    /// Flattens `pst` and its annotations (indexed by [`NodeId::index`],
    /// masks of `space.width()` trits) into a fresh arena.
    pub fn build(pst: &Pst, annotations: &[Option<TritVec>], space: &LinkSpace) -> Self {
        let width = space.width();
        let words_per_mask = TritVec::no(width).words().len();
        let skipping = pst.options().eliminate_trivial_tests;
        let order = pst.order();

        let postorder = pst.postorder();
        let mut arena = MatchArena {
            width,
            words_per_mask,
            factored: pst.factored().to_vec(),
            max_depth: order.len() + 1,
            ..MatchArena::default()
        };
        arena.map = vec![NONE; pst.arena_size()];

        // The effective (skip-resolved) node a search entering `id` lands on.
        let effective = |id: NodeId| -> NodeId {
            if skipping {
                pst.node(id).skip().unwrap_or(id)
            } else {
                id
            }
        };

        let mut level_branches = vec![false; order.len()];
        let no_ann = TritVec::no(width);
        for id in &postorder {
            let node = pst.node(*id);
            let arena_idx = arena.attr.len() as u32;
            if let Some(slot) = arena.map.get_mut(id.index()) {
                *slot = arena_idx;
            }

            let eq_start = arena.eq_values.len() as u32;
            for (value, child) in node.eq_edges() {
                arena.eq_values.push(value.clone());
                arena.eq_children.push(arena.translate(effective(*child)));
            }
            let range_start = arena.range_tests.len() as u32;
            for (test, child) in node.range_edges() {
                arena.range_tests.push(test.clone());
                arena
                    .range_children
                    .push(arena.translate(effective(*child)));
            }
            arena.eq_span.push((eq_start, arena.eq_values.len() as u32));
            arena
                .range_span
                .push((range_start, arena.range_tests.len() as u32));
            arena.star.push(match node.star() {
                Some(star) => arena.translate(effective(star)),
                None => NONE,
            });
            arena.attr.push(match node.attribute() {
                Some(attr) => attr as u32,
                None => NONE,
            });
            if !node.is_leaf() && (!node.eq_edges().is_empty() || !node.range_edges().is_empty()) {
                if let Some(flag) = level_branches.get_mut(node.level()) {
                    *flag = true;
                }
            }

            let ann = annotations
                .get(id.index())
                .and_then(|a| a.as_ref())
                .unwrap_or(&no_ann);
            debug_assert_eq!(ann.words().len(), words_per_mask);
            arena.ann_words.extend_from_slice(ann.words());
        }

        arena.roots = pst
            .roots()
            .map(|(key, root)| (key.to_vec().into(), arena.translate(effective(root))))
            .collect();
        arena.roots.sort_unstable_by(|a, b| a.0.cmp(&b.0));

        arena.tested = arena.factored.clone();
        for (level, branched) in level_branches.iter().enumerate() {
            if *branched {
                if let Some(&attr) = order.get(level) {
                    arena.tested.push(attr);
                }
            }
        }
        arena.tested.sort_unstable();
        arena.tested.dedup();
        arena
    }

    /// Applies one PST mutation incrementally: path nodes get their
    /// annotation slots patched and their edge sets re-resolved (in place
    /// when the arity is unchanged, as a fresh span otherwise), and nodes
    /// the mutation created are appended. Everything an insert can change
    /// lives on the reported paths — a node's only incoming edge comes from
    /// its parent, which is on the path too, and a trivial node's skip
    /// chain is star-only, so it is walked (and therefore reported) by the
    /// insert that altered it. Returns `false` — full rebuild required —
    /// only when the mutation freed nodes, which would leave stale `map`
    /// entries and garbage spans behind.
    pub fn apply_mutation(
        &mut self,
        pst: &Pst,
        report: &MutationReport,
        annotations: &[Option<TritVec>],
    ) -> bool {
        if !report.freed.is_empty() {
            return false;
        }
        let skipping = pst.options().eliminate_trivial_tests;
        if self.map.len() < pst.arena_size() {
            self.map.resize(pst.arena_size(), NONE);
        }
        for path in &report.paths {
            // Leaf first, so a parent's re-resolved edges can translate its
            // freshly appended children.
            for id in path.iter().rev() {
                self.sync_node(pst, *id, annotations, skipping);
            }
            if let Some(&root_id) = path.first() {
                self.sync_root(pst, root_id, skipping);
            }
        }
        true
    }

    /// Brings one node's arena image (annotation, edges, star, `tested`
    /// bookkeeping) in line with the PST, appending the node if it is new.
    fn sync_node(
        &mut self,
        pst: &Pst,
        id: NodeId,
        annotations: &[Option<TritVec>],
        skipping: bool,
    ) {
        let node = pst.node(id);
        let effective = |child: NodeId| -> NodeId {
            if skipping {
                pst.node(child).skip().unwrap_or(child)
            } else {
                child
            }
        };
        // Resolve children before touching the arena arrays (translate
        // borrows `map`; the path below this node is already synced).
        let eq: Vec<(Value, u32)> = node
            .eq_edges()
            .iter()
            .map(|(v, c)| (v.clone(), self.translate(effective(*c))))
            .collect();
        let ranges: Vec<(AttrTest, u32)> = node
            .range_edges()
            .iter()
            .map(|(t, c)| (t.clone(), self.translate(effective(*c))))
            .collect();
        let star = match node.star() {
            Some(s) => self.translate(effective(s)),
            None => NONE,
        };
        let no_ann = TritVec::no(self.width);
        let ann = annotations
            .get(id.index())
            .and_then(|a| a.as_ref())
            .unwrap_or(&no_ann);
        debug_assert_eq!(ann.words().len(), self.words_per_mask);

        let mapped = self.map.get(id.index()).copied().unwrap_or(NONE);
        let arena_idx = if mapped == NONE {
            let idx = self.attr.len() as u32;
            if let Some(slot) = self.map.get_mut(id.index()) {
                *slot = idx;
            }
            self.attr.push(match node.attribute() {
                Some(attr) => attr as u32,
                None => NONE,
            });
            self.eq_span.push((0, 0));
            self.range_span.push((0, 0));
            self.star.push(NONE);
            self.ann_words.extend_from_slice(ann.words());
            idx
        } else {
            let start = mapped as usize * self.words_per_mask;
            if let Some(slot) = self.ann_words.get_mut(start..start + self.words_per_mask) {
                slot.copy_from_slice(ann.words());
            }
            mapped
        };
        let i = arena_idx as usize;

        // Edge spans: overwrite in place when the arity is unchanged (the
        // common case — only targets or labels were re-resolved); otherwise
        // append a fresh span, abandoning the old one until the next full
        // rebuild compacts the arrays.
        let eq_span = self.eq_span.get(i).copied().unwrap_or((0, 0));
        if (eq_span.1 - eq_span.0) as usize == eq.len() {
            for (k, (v, c)) in eq.into_iter().enumerate() {
                let at = eq_span.0 as usize + k;
                if let Some(slot) = self.eq_values.get_mut(at) {
                    *slot = v;
                }
                if let Some(slot) = self.eq_children.get_mut(at) {
                    *slot = c;
                }
            }
        } else {
            let start = self.eq_values.len() as u32;
            for (v, c) in eq {
                self.eq_values.push(v);
                self.eq_children.push(c);
            }
            if let Some(span) = self.eq_span.get_mut(i) {
                *span = (start, self.eq_values.len() as u32);
            }
        }
        let range_span = self.range_span.get(i).copied().unwrap_or((0, 0));
        if (range_span.1 - range_span.0) as usize == ranges.len() {
            for (k, (t, c)) in ranges.into_iter().enumerate() {
                let at = range_span.0 as usize + k;
                if let Some(slot) = self.range_tests.get_mut(at) {
                    *slot = t;
                }
                if let Some(slot) = self.range_children.get_mut(at) {
                    *slot = c;
                }
            }
        } else {
            let start = self.range_tests.len() as u32;
            for (t, c) in ranges {
                self.range_tests.push(t);
                self.range_children.push(c);
            }
            if let Some(span) = self.range_span.get_mut(i) {
                *span = (start, self.range_tests.len() as u32);
            }
        }
        if let Some(slot) = self.star.get_mut(i) {
            *slot = star;
        }

        // A level that branches for the first time makes its attribute
        // observable — future cache keys must include it.
        let eq_span = self.eq_span.get(i).copied().unwrap_or((0, 0));
        if !node.is_leaf()
            && (eq_span.1 > eq_span.0 || {
                let r = self.range_span.get(i).copied().unwrap_or((0, 0));
                r.1 > r.0
            })
        {
            if let Some(&attr) = pst.order().get(node.level()) {
                if let Err(pos) = self.tested.binary_search(&attr) {
                    self.tested.insert(pos, attr);
                }
            }
        }
    }

    /// Re-resolves the factored-root entry whose subtree root is `root_id`
    /// (its effective target can move when skip chains change), inserting
    /// the entry if the key is new.
    fn sync_root(&mut self, pst: &Pst, root_id: NodeId, skipping: bool) {
        let resolved = if skipping {
            self.translate(pst.node(root_id).skip().unwrap_or(root_id))
        } else {
            self.translate(root_id)
        };
        for (key, id) in pst.roots() {
            if id == root_id {
                match self.roots.binary_search_by(|(k, _)| (**k).cmp(key)) {
                    Ok(i) => {
                        if let Some(entry) = self.roots.get_mut(i) {
                            entry.1 = resolved;
                        }
                    }
                    Err(i) => self.roots.insert(i, (key.to_vec().into(), resolved)),
                }
                return;
            }
        }
    }

    /// The attribute indices that can influence a match result (sorted).
    pub fn tested_attributes(&self) -> &[usize] {
        &self.tested
    }

    /// Number of flattened nodes.
    pub fn node_count(&self) -> usize {
        self.attr.len()
    }

    /// The arena root for `event`'s factor key, found by binary search
    /// against the event's *borrowed* factored values — no per-event key
    /// allocation.
    fn root_for_event(&self, event: &Event) -> Option<u32> {
        let values = event.values();
        self.roots
            .binary_search_by(|(key, _)| {
                key.iter()
                    .zip(&self.factored)
                    .map(|(k, &attr)| match values.get(attr) {
                        Some(v) => k.cmp(v),
                        None => std::cmp::Ordering::Less,
                    })
                    .find(|o| !o.is_eq())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .ok()
            .and_then(|i| self.roots.get(i).map(|(_, root)| *root))
    }

    /// The annotation slab slot of one node.
    fn ann(&self, node: u32) -> &[u64] {
        let start = node as usize * self.words_per_mask;
        self.ann_words
            .get(start..start + self.words_per_mask)
            .unwrap_or(&[])
    }

    fn translate(&self, id: NodeId) -> u32 {
        self.map.get(id.index()).copied().unwrap_or(NONE)
    }

    /// The §3.3 refinement search as an explicit work-stack walk over the
    /// flattened tree. `scratch.slot(0)` must hold the tree's
    /// initialization mask on entry (with at least one `Maybe`); on return
    /// it holds the fully refined mask. Mirrors the recursive `subsearch`
    /// exactly: same refinement order, same early exits, same step and
    /// comparison counts (modulo skipped trivial chains).
    pub fn search(
        &self,
        event: &Event,
        scratch: &mut MatchScratch,
        stats: &mut MatchStats,
    ) -> bool {
        let Some(root) = self.root_for_event(event) else {
            return false;
        };
        scratch.ensure(self.max_depth + 2, self.width);
        scratch.frames.clear();
        scratch.frames.push(Frame {
            node: root,
            cursor: 0,
            state: FrameState::Enter,
        });
        let values = event.values();

        'walk: while let Some(&Frame {
            node,
            cursor,
            state,
        }) = scratch.frames.last()
        {
            let depth = scratch.frames.len() - 1;
            match state {
                FrameState::Enter => {
                    stats.steps += 1;
                    let completed = {
                        let mask = scratch.slot_mut(depth);
                        mask.refine_in_place(self.ann(node));
                        !mask.has_maybe()
                    };
                    let attr = self.attr.get(node as usize).copied().unwrap_or(NONE);
                    if completed || attr == NONE {
                        // Fully refined, or a leaf (whose Yes/No-only
                        // annotation already killed every Maybe).
                        if !completed {
                            scratch.slot_mut(depth).maybes_to_no_in_place();
                        }
                        unwind(scratch);
                        continue 'walk;
                    }
                    // Range edges come after the equality branch either
                    // way; prime the resume point before descending.
                    let (range_start, _) = self
                        .range_span
                        .get(node as usize)
                        .copied()
                        .unwrap_or((0, 0));
                    set_top(scratch, FrameState::Ranges, range_start);
                    stats.comparisons += 1;
                    if let Some(child) = self.eq_lookup(node, values) {
                        scratch.descend(depth, child);
                    }
                }
                FrameState::Ranges => {
                    let (_, range_end) = self
                        .range_span
                        .get(node as usize)
                        .copied()
                        .unwrap_or((0, 0));
                    let value = self
                        .attr
                        .get(node as usize)
                        .and_then(|&a| values.get(a as usize));
                    let mut cur = cursor;
                    let mut child = None;
                    while cur < range_end {
                        let i = cur as usize;
                        cur += 1;
                        stats.comparisons += 1;
                        let matched = match (self.range_tests.get(i), value) {
                            (Some(test), Some(v)) => test.matches(v),
                            _ => false,
                        };
                        if matched {
                            child = self.range_children.get(i).copied();
                            break;
                        }
                    }
                    let next = if child.is_some() {
                        FrameState::Ranges
                    } else {
                        FrameState::Star
                    };
                    set_top(scratch, next, cur);
                    if let Some(child) = child {
                        scratch.descend(depth, child);
                    }
                }
                FrameState::Star => {
                    set_top(scratch, FrameState::Done, cursor);
                    let star = self.star.get(node as usize).copied().unwrap_or(NONE);
                    if star != NONE {
                        scratch.descend(depth, star);
                    }
                }
                FrameState::Done => {
                    // End of step 3: remaining Maybes become No.
                    scratch.slot_mut(depth).maybes_to_no_in_place();
                    unwind(scratch);
                }
            }
        }
        true
    }

    /// Binary search of the node's equality span for the event's value at
    /// the node's attribute.
    fn eq_lookup(&self, node: u32, values: &[Value]) -> Option<u32> {
        let attr = self.attr.get(node as usize).copied()?;
        let value = values.get(attr as usize)?;
        let (start, end) = self.eq_span.get(node as usize).copied()?;
        let span = self.eq_values.get(start as usize..end as usize)?;
        let i = span.binary_search_by(|v| v.cmp(value)).ok()?;
        self.eq_children.get(start as usize + i).copied()
    }
}

/// Rewrites the top frame's resume point.
fn set_top(scratch: &mut MatchScratch, state: FrameState, cursor: u32) {
    if let Some(frame) = scratch.frames.last_mut() {
        frame.state = state;
        frame.cursor = cursor;
    }
}

/// Pops the completed top frame and absorbs its result into the parent,
/// cascading while parents early-exit (no `Maybe` left — the recursive
/// search returns right there, skipping `maybes_to_no`, which is the
/// identity on a Maybe-free mask).
fn unwind(scratch: &mut MatchScratch) {
    loop {
        scratch.frames.pop();
        if scratch.frames.is_empty() {
            return;
        }
        let depth = scratch.frames.len() - 1;
        let (parent, child) = scratch.parent_child(depth);
        parent.absorb_yes_in_place(child);
        if parent.has_maybe() {
            // Parent resumes from its saved cursor/state.
            return;
        }
    }
}

/// One suspended node visit in the explicit work-stack walk.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Arena node index.
    node: u32,
    /// Next range edge to test (absolute index into `range_tests`).
    cursor: u32,
    state: FrameState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameState {
    /// Refine against the node's annotation, then try the equality branch.
    Enter,
    /// Testing range edges from `cursor`.
    Ranges,
    /// Range edges exhausted; the `*` branch remains.
    Star,
    /// All children absorbed; terminate the node.
    Done,
}

/// Reusable mask pool and frame stack for [`MatchArena::search`]: one
/// `TritVec` slot per tree depth, copied into (never freshly allocated) as
/// the walk descends. Owned by whoever runs matching — a broker shard, the
/// inline engine loop, a benchmark thread — and handed down per call;
/// shard-owned, so it needs no lock.
#[derive(Debug, Default)]
pub struct MatchScratch {
    slots: Vec<TritVec>,
    frames: Vec<Frame>,
}

impl MatchScratch {
    /// A fresh, empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes sure `depth` mask slots of `width` trits exist.
    fn ensure(&mut self, depth: usize, width: usize) {
        if self.slots.len() < depth {
            self.slots.resize_with(depth, || TritVec::no(width));
        }
    }

    /// Seeds the root slot with the initialization mask (the caller checks
    /// `has_maybe` first).
    pub(crate) fn seed(&mut self, init: &TritVec) {
        if self.slots.is_empty() {
            self.slots.push(init.clone());
        } else if let Some(slot) = self.slots.first_mut() {
            slot.clone_from(init);
        }
    }

    /// The refined result mask after a successful search.
    pub(crate) fn result(&self) -> Option<&TritVec> {
        self.slots.first()
    }

    fn slot_mut(&mut self, depth: usize) -> &mut TritVec {
        // The walk never descends deeper than the PST depth the pool was
        // sized for, so `ensure()` has always made this slot exist.
        debug_assert!(depth < self.slots.len(), "slot pool sized by ensure()");
        // analyzer:allow(index): depth < slots.len() by ensure(), asserted above
        &mut self.slots[depth]
    }

    /// Copies the parent mask at `depth` into the child slot and pushes the
    /// child's frame.
    fn descend(&mut self, depth: usize, child: u32) {
        let (parents, children) = self.slots.split_at_mut(depth + 1);
        match (parents.last(), children.first_mut()) {
            (Some(parent), Some(slot)) => slot.clone_from(parent),
            _ => debug_assert!(false, "slot pool sized by ensure()"),
        }
        self.frames.push(Frame {
            node: child,
            cursor: 0,
            state: FrameState::Enter,
        });
    }

    /// Mutable parent slot at `depth` plus shared child slot at `depth+1`.
    fn parent_child(&mut self, depth: usize) -> (&mut TritVec, &TritVec) {
        let (parents, children) = self.slots.split_at_mut(depth + 1);
        // The walk only unwinds frames it descended into, and ensure()
        // sized the pool, so both sides of the split are non-empty.
        debug_assert!(!parents.is_empty() && !children.is_empty());
        // analyzer:allow(index): both split sides non-empty, asserted above
        (&mut parents[depth], &children[0])
    }
}
