//! Errors produced by the link-matching layer.

use std::fmt;

use linkcast_matching::MatcherError;

/// Convenience alias for results in this crate.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors from topology construction, routing setup, and subscription
/// management.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The broker network is structurally invalid.
    Topology(String),
    /// A matcher rejected a subscription or configuration.
    Matcher(MatcherError),
    /// A schema/event/predicate error from the data model.
    Types(linkcast_types::Error),
    /// An id referred to an unknown entity.
    Unknown(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Topology(msg) => write!(f, "topology error: {msg}"),
            CoreError::Matcher(e) => write!(f, "{e}"),
            CoreError::Types(e) => write!(f, "{e}"),
            CoreError::Unknown(msg) => write!(f, "unknown entity: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Matcher(e) => Some(e),
            CoreError::Types(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatcherError> for CoreError {
    fn from(e: MatcherError) -> Self {
        CoreError::Matcher(e)
    }
}

impl From<linkcast_types::Error> for CoreError {
    fn from(e: linkcast_types::Error) -> Self {
        CoreError::Types(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::Topology("loop".into());
        assert_eq!(e.to_string(), "topology error: loop");
        assert!(e.source().is_none());

        let e = CoreError::from(MatcherError::InvalidOptions("x".into()));
        assert!(e.source().is_some());

        let e = CoreError::from(linkcast_types::Error::UnknownAttribute("a".into()));
        assert!(e.to_string().contains("unknown attribute"));
        assert!(e.source().is_some());

        assert!(CoreError::Unknown("tree T9".into())
            .to_string()
            .contains("tree T9"));
    }
}
