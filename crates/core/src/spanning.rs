//! Spanning trees for event distribution, and the per-broker link spaces
//! (including footnote 1's "virtual links") that trit vectors index.

use std::collections::HashMap;

use linkcast_types::{BrokerId, ClientId, LinkId, Trit, TritVec};

use crate::{BrokerNetwork, CoreError, Result};

/// Identifies a spanning tree within a [`SpanningForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeId(pub(crate) u32);

impl TreeId {
    /// Raw index of the tree in its forest.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a tree id from an index previously obtained via
    /// [`TreeId::index`] (e.g. carried over the wire between brokers that
    /// derive identical forests from the shared static topology). The index
    /// is *not* validated here; [`SpanningForest::tree`] returns `None` for
    /// out-of-range ids.
    pub const fn from_index(index: usize) -> Self {
        TreeId(index as u32)
    }
}

impl std::fmt::Display for TreeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One spanning tree over the broker graph: the shortest-path tree rooted at
/// a publisher-hosting broker ("we assume that events always follow the
/// shortest path", §3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanningTree {
    root: BrokerId,
    parent: Vec<Option<BrokerId>>,
    children: Vec<Vec<BrokerId>>,
    /// Euler-tour interval per broker for O(1) descendant tests.
    tin: Vec<u32>,
    tout: Vec<u32>,
}

impl SpanningTree {
    /// Builds the shortest-path tree rooted at `root` over the surviving
    /// graph (edges in `excluded` are treated as severed). Brokers the
    /// exclusions disconnect from `root` are simply absent from the tree
    /// ([`SpanningTree::contains`] reports them).
    fn shortest_path_tree(
        network: &BrokerNetwork,
        root: BrokerId,
        excluded: &[(BrokerId, BrokerId)],
    ) -> Self {
        let (_, parent) = network.shortest_paths_excluding(root, excluded);
        let n = network.broker_count();
        let mut children: Vec<Vec<BrokerId>> = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(BrokerId::new(i as u32));
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut timer = 0u32;
        let mut stack = vec![(root, false)];
        while let Some((b, done)) = stack.pop() {
            if done {
                tout[b.index()] = timer;
                timer += 1;
                continue;
            }
            tin[b.index()] = timer;
            timer += 1;
            stack.push((b, true));
            for &c in &children[b.index()] {
                stack.push((c, false));
            }
        }
        SpanningTree {
            root,
            parent,
            children,
            tin,
            tout,
        }
    }

    /// The tree's root (the publisher-hosting broker it serves).
    pub fn root(&self) -> BrokerId {
        self.root
    }

    /// The parent of `broker` in the tree (`None` for the root).
    pub fn parent(&self, broker: BrokerId) -> Option<BrokerId> {
        self.parent[broker.index()]
    }

    /// The children of `broker` in the tree.
    pub fn children(&self, broker: BrokerId) -> &[BrokerId] {
        &self.children[broker.index()]
    }

    /// Whether `broker` is part of this tree. On a fully connected graph
    /// every broker is; after excluded-edge recomputation (topology repair)
    /// brokers cut off from the root are not, and their Euler-tour stamps
    /// are meaningless — every structural query below guards on this.
    pub fn contains(&self, broker: BrokerId) -> bool {
        broker == self.root || self.parent[broker.index()].is_some()
    }

    /// Whether `descendant` lies in the subtree rooted at `ancestor`
    /// (inclusive). Brokers outside the tree are nobody's descendant and
    /// nobody's ancestor.
    pub fn is_descendant(&self, descendant: BrokerId, ancestor: BrokerId) -> bool {
        self.contains(descendant)
            && self.contains(ancestor)
            && self.tin[ancestor.index()] <= self.tin[descendant.index()]
            && self.tout[descendant.index()] <= self.tout[ancestor.index()]
    }

    /// The brokers on the unique tree path from `from` down to its
    /// descendant `to`, inclusive of both ends; `None` if `to` is not in
    /// `from`'s subtree.
    ///
    /// Used to attribute per-hop matching costs to a delivery (Chart 2's
    /// "sum of the times for all the partial matches at intermediate
    /// brokers along the way from publisher to subscriber").
    pub fn path_down(&self, from: BrokerId, to: BrokerId) -> Option<Vec<BrokerId>> {
        if !self.is_descendant(to, from) {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = self.parent(cur).expect("descendants have parent chains");
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The child of `broker` whose subtree contains `target`, if `target`
    /// is a strict descendant of `broker`.
    pub fn child_toward(&self, broker: BrokerId, target: BrokerId) -> Option<BrokerId> {
        if target == broker || !self.is_descendant(target, broker) {
            return None;
        }
        // Walk up from the target until just below `broker`.
        let mut cur = target;
        loop {
            let p = self.parent(cur)?;
            if p == broker {
                return Some(cur);
            }
            cur = p;
        }
    }
}

/// The set of spanning trees in use: one per publisher-hosting broker,
/// deduplicated ("there will be a relatively small set of different spanning
/// trees", §3.2).
#[derive(Debug, Clone)]
pub struct SpanningForest {
    trees: Vec<SpanningTree>,
    by_root: HashMap<BrokerId, TreeId>,
}

impl SpanningForest {
    /// Computes trees rooted at each of `roots` (brokers that host
    /// publishers), sharing structurally identical trees.
    ///
    /// # Errors
    ///
    /// [`CoreError::Topology`] if `roots` is empty or contains an unknown
    /// broker.
    pub fn compute(network: &BrokerNetwork, roots: &[BrokerId]) -> Result<Self> {
        Self::compute_excluding(network, roots, &[])
    }

    /// [`compute`](Self::compute) over the surviving graph: edges in
    /// `excluded` are treated as severed, so every tree spans only the
    /// component its root sits in. Brokers disconnected from a root are
    /// absent from that root's tree (no error — topology repair keeps
    /// routing the reachable component); an excluded edge that appears
    /// nowhere in the network is ignored.
    ///
    /// # Errors
    ///
    /// [`CoreError::Topology`] if `roots` is empty or contains an unknown
    /// broker.
    pub fn compute_excluding(
        network: &BrokerNetwork,
        roots: &[BrokerId],
        excluded: &[(BrokerId, BrokerId)],
    ) -> Result<Self> {
        if roots.is_empty() {
            return Err(CoreError::Topology(
                "at least one publisher-hosting broker is required".into(),
            ));
        }
        let mut forest = SpanningForest {
            trees: Vec::new(),
            by_root: HashMap::new(),
        };
        for &root in roots {
            if root.index() >= network.broker_count() {
                return Err(CoreError::Topology(format!("unknown root broker {root}")));
            }
            if forest.by_root.contains_key(&root) {
                continue;
            }
            let tree = SpanningTree::shortest_path_tree(network, root, excluded);
            // Dedup: trees with identical parent structure are the same
            // distribution tree regardless of root label.
            let id = match forest.trees.iter().position(|t| t.parent == tree.parent) {
                Some(i) => TreeId(i as u32),
                None => {
                    forest.trees.push(tree);
                    TreeId((forest.trees.len() - 1) as u32)
                }
            };
            forest.by_root.insert(root, id);
        }
        Ok(forest)
    }

    /// Computes trees for every broker (any broker may host a publisher).
    ///
    /// # Errors
    ///
    /// See [`SpanningForest::compute`].
    pub fn compute_all(network: &BrokerNetwork) -> Result<Self> {
        let roots: Vec<BrokerId> = network.brokers().collect();
        Self::compute(network, &roots)
    }

    /// Number of distinct trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is empty (never true for a built forest).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The roots this forest was computed for, in ascending id order — the
    /// exact argument to hand [`SpanningForest::compute_excluding`] so a
    /// repaired forest assigns [`TreeId`]s deterministically across brokers
    /// (every broker recomputes from the same sorted root list).
    pub fn roots(&self) -> Vec<BrokerId> {
        let mut roots: Vec<BrokerId> = self.by_root.keys().copied().collect();
        roots.sort_unstable();
        roots
    }

    /// Whether `a` and `b` are parent/child in *any* tree of the forest.
    /// Topology repair uses the old-vs-new answer to decide which live
    /// links need a subscription resync after an epoch flip.
    pub fn tree_adjacent(&self, a: BrokerId, b: BrokerId) -> bool {
        self.trees
            .iter()
            .any(|t| t.parent(a) == Some(b) || t.parent(b) == Some(a))
    }

    /// The tree used by publishers attached to `root`, if computed.
    pub fn tree_for_root(&self, root: BrokerId) -> Option<TreeId> {
        self.by_root.get(&root).copied()
    }

    /// Looks up a tree by id.
    pub fn tree(&self, id: TreeId) -> Option<&SpanningTree> {
        self.trees.get(id.index())
    }

    /// Iterates over `(id, tree)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TreeId, &SpanningTree)> {
        self.trees
            .iter()
            .enumerate()
            .map(|(i, t)| (TreeId(i as u32), t))
    }
}

/// The trit-vector index space of one broker: its physical links crossed
/// with the *virtual-link classes* of footnote 1.
///
/// Each spanning tree induces, at this broker, a mapping from downstream
/// destinations (clients) to the outgoing link that reaches them. Trees with
/// identical mappings share a **class**; the trit vector has one position
/// per `(class, link)` pair, so a single annotated PST serves every tree
/// soundly even when trees route the same destination over different links
/// (the situation footnote 1 resolves by "splitting the link into two or
/// more 'virtual' links"). On tree-like networks all trees share one class
/// and the vector is exactly one trit per physical link, as in the paper's
/// figures.
#[derive(Debug, Clone)]
pub struct LinkSpace {
    broker: BrokerId,
    n_links: usize,
    /// `class_of[tree.index()]` = class index.
    class_of: Vec<usize>,
    /// Per class: downstream destination → link.
    mappings: Vec<HashMap<ClientId, LinkId>>,
    /// Per tree: the initialization mask of §3.2 (width = classes × links).
    init_masks: Vec<TritVec>,
}

impl LinkSpace {
    /// Builds the link space of `broker` for all trees in `forest`.
    pub fn build(network: &BrokerNetwork, forest: &SpanningForest, broker: BrokerId) -> Self {
        let n_links = network.link_count(broker);
        let mut mappings: Vec<HashMap<ClientId, LinkId>> = Vec::new();
        let mut class_of = Vec::with_capacity(forest.len());
        for (_, tree) in forest.iter() {
            let mapping = Self::full_mapping(network, tree, broker);
            let class = match mappings.iter().position(|m| *m == mapping) {
                Some(i) => i,
                None => {
                    mappings.push(mapping);
                    mappings.len() - 1
                }
            };
            class_of.push(class);
        }
        let width = mappings.len() * n_links;
        let init_masks = forest
            .iter()
            .map(|(id, tree)| {
                // §3.2: the trit at link l is Maybe "if at least one of the
                // destinations routable via l is a descendant of the broker
                // in the spanning tree; and No" otherwise.
                let class = class_of[id.index()];
                let mut mask = TritVec::no(width);
                for (client, link) in &mappings[class] {
                    let home = network.home_broker(*client).expect("client exists");
                    if home == broker || tree.is_descendant(home, broker) {
                        mask.set(class * n_links + link.index(), Trit::Maybe);
                    }
                }
                mask
            })
            .collect();
        LinkSpace {
            broker,
            n_links,
            class_of,
            mappings,
            init_masks,
        }
    }

    /// The next-hop link from `broker` toward every destination along the
    /// unique tree path (downstream destinations map to a child link,
    /// upstream ones to the parent link, local clients to their client
    /// link). This is the broker's "routing table mapping each possible
    /// destination to the link which is the next hop" of §3.2, specialized
    /// to one tree; trees with identical tables share a virtual-link class.
    fn full_mapping(
        network: &BrokerNetwork,
        tree: &SpanningTree,
        broker: BrokerId,
    ) -> HashMap<ClientId, LinkId> {
        let mut mapping = HashMap::new();
        if !tree.contains(broker) {
            // The broker sits outside this tree's component (an excluded
            // edge cut it off from the root): events on this tree can never
            // reach it, so it routes nothing — not even to local clients.
            return mapping;
        }
        for client in network.clients() {
            let home = network.home_broker(client).expect("client exists");
            let link = if home == broker {
                network
                    .link_to_client(broker, client)
                    .expect("local client has a link")
            } else if !tree.contains(home) {
                // Unreachable on the surviving graph: no next hop exists.
                continue;
            } else if let Some(child) = tree.child_toward(broker, home) {
                network
                    .link_to_broker(broker, child)
                    .expect("tree edges are network links")
            } else {
                let parent = tree
                    .parent(broker)
                    .expect("non-descendant destinations lie through the parent");
                network
                    .link_to_broker(broker, parent)
                    .expect("tree edges are network links")
            };
            mapping.insert(client, link);
        }
        mapping
    }

    /// The broker this space belongs to.
    pub fn broker(&self) -> BrokerId {
        self.broker
    }

    /// Number of physical links.
    pub fn link_count(&self) -> usize {
        self.n_links
    }

    /// Number of virtual-link classes (1 on tree-like networks).
    pub fn class_count(&self) -> usize {
        self.mappings.len()
    }

    /// Width of trit vectors over this space (`classes × links`).
    pub fn width(&self) -> usize {
        self.mappings.len() * self.n_links
    }

    /// The initialization mask for events distributed along `tree`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is not part of the forest this space was built
    /// from.
    pub fn init_mask(&self, tree: TreeId) -> &TritVec {
        &self.init_masks[tree.index()]
    }

    /// The virtual-link class `tree` belongs to.
    pub fn class(&self, tree: TreeId) -> usize {
        self.class_of[tree.index()]
    }

    /// The trit position of `(class, link)`.
    pub fn position(&self, class: usize, link: LinkId) -> usize {
        class * self.n_links + link.index()
    }

    /// Annotates a subscriber's leaf trit vector: `Yes` at each
    /// `(class, link)` position that reaches `client` downstream, `No`
    /// elsewhere. Returns an all-`No` vector for destinations never
    /// downstream of this broker.
    pub fn leaf_vector(&self, client: ClientId) -> TritVec {
        let mut v = TritVec::no(self.width());
        for (class, mapping) in self.mappings.iter().enumerate() {
            if let Some(link) = mapping.get(&client) {
                v.set(self.position(class, *link), Trit::Yes);
            }
        }
        v
    }

    /// Decodes a fully refined mask into the physical links to forward on
    /// (positions outside `tree`'s class are never `Yes` because the
    /// initialization mask starts them at `No`).
    pub fn links_to_send(&self, mask: &TritVec) -> Vec<LinkId> {
        let mut out = Vec::new();
        self.links_to_send_into(mask, &mut out);
        out
    }

    /// [`links_to_send`](Self::links_to_send) into a caller-provided buffer
    /// (cleared first) — the allocation-free path for reused scratch.
    pub fn links_to_send_into(&self, mask: &TritVec, out: &mut Vec<LinkId>) {
        out.clear();
        out.extend(
            mask.yes_indices()
                .map(|p| LinkId::new((p % self.n_links) as u32)),
        );
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    /// B0 - B1 - B2, with B1 - B3 hanging off; clients one per broker.
    fn star() -> (BrokerNetwork, Vec<BrokerId>, Vec<ClientId>) {
        let mut b = NetworkBuilder::new();
        let ids = b.add_brokers(4);
        b.connect(ids[0], ids[1], 10.0).unwrap();
        b.connect(ids[1], ids[2], 10.0).unwrap();
        b.connect(ids[1], ids[3], 10.0).unwrap();
        let clients = ids.iter().map(|&i| b.add_client(i).unwrap()).collect();
        let net = b.build().unwrap();
        (net, ids, clients)
    }

    #[test]
    fn tree_structure_on_star() {
        let (net, ids, _) = star();
        let forest = SpanningForest::compute(&net, &[ids[0]]).unwrap();
        let tree = forest.tree(TreeId(0)).unwrap();
        assert_eq!(tree.root(), ids[0]);
        assert_eq!(tree.parent(ids[0]), None);
        assert_eq!(tree.parent(ids[1]), Some(ids[0]));
        assert_eq!(tree.parent(ids[2]), Some(ids[1]));
        assert_eq!(tree.children(ids[1]), &[ids[2], ids[3]]);
        assert!(tree.is_descendant(ids[3], ids[1]));
        assert!(tree.is_descendant(ids[1], ids[1]));
        assert!(!tree.is_descendant(ids[0], ids[1]));
        assert_eq!(tree.child_toward(ids[0], ids[2]), Some(ids[1]));
        assert_eq!(tree.child_toward(ids[1], ids[3]), Some(ids[3]));
        assert_eq!(tree.child_toward(ids[1], ids[0]), None);
        assert_eq!(tree.child_toward(ids[1], ids[1]), None);
        assert_eq!(
            tree.path_down(ids[0], ids[2]),
            Some(vec![ids[0], ids[1], ids[2]])
        );
        assert_eq!(tree.path_down(ids[0], ids[0]), Some(vec![ids[0]]));
        assert_eq!(tree.path_down(ids[1], ids[0]), None);
    }

    #[test]
    fn forest_dedups_identical_trees() {
        // On a tree-shaped network every root yields the same undirected
        // tree, but parent orientation differs per root, so trees are
        // distinct; on a single-broker network they collapse.
        let mut b = NetworkBuilder::new();
        let b0 = b.add_broker();
        b.add_client(b0).unwrap();
        let net = b.build().unwrap();
        let forest = SpanningForest::compute(&net, &[b0, b0]).unwrap();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest.tree_for_root(b0), Some(TreeId(0)));
        assert!(!forest.is_empty());
    }

    #[test]
    fn forest_rejects_bad_roots() {
        let (net, _, _) = star();
        assert!(SpanningForest::compute(&net, &[]).is_err());
        assert!(SpanningForest::compute(&net, &[BrokerId::new(9)]).is_err());
    }

    #[test]
    fn link_space_on_tree_network_has_one_class() {
        let (net, ids, clients) = star();
        let forest = SpanningForest::compute_all(&net).unwrap();
        let space = LinkSpace::build(&net, &forest, ids[1]);
        assert_eq!(space.class_count(), 1);
        assert_eq!(space.link_count(), 4); // B0, B2, B3, local client
        assert_eq!(space.width(), 4);

        // Local client: Yes on its client link.
        let local = space.leaf_vector(clients[1]);
        let client_link = net.link_to_client(ids[1], clients[1]).unwrap();
        assert_eq!(
            local.yes_indices().collect::<Vec<_>>(),
            vec![client_link.index()]
        );

        // Remote client at B2: Yes on the link toward B2.
        let remote = space.leaf_vector(clients[2]);
        let link = net.link_to_broker(ids[1], ids[2]).unwrap();
        assert_eq!(remote.yes_indices().collect::<Vec<_>>(), vec![link.index()]);
    }

    #[test]
    fn init_mask_excludes_upstream_links() {
        let (net, ids, _) = star();
        let forest = SpanningForest::compute(&net, &[ids[0]]).unwrap();
        let tree = forest.tree_for_root(ids[0]).unwrap();
        let space = LinkSpace::build(&net, &forest, ids[1]);
        let mask = space.init_mask(tree);
        // From B1 on the tree rooted at B0: downstream = B2, B3, local
        // client; upstream = B0.
        let up = net.link_to_broker(ids[1], ids[0]).unwrap();
        assert_eq!(mask.get(up.index()), Trit::No);
        assert_eq!(mask.count_maybe(), 3);
    }

    #[test]
    fn leaf_broker_mask_covers_only_local_clients() {
        let (net, ids, _) = star();
        let forest = SpanningForest::compute(&net, &[ids[0]]).unwrap();
        let tree = forest.tree_for_root(ids[0]).unwrap();
        let space = LinkSpace::build(&net, &forest, ids[2]);
        let mask = space.init_mask(tree);
        assert_eq!(mask.count_maybe(), 1, "only the local client is downstream");
    }

    #[test]
    fn cyclic_topology_can_need_multiple_classes() {
        // Square B0-B1-B2-B3-B0 with unit delays: the tree rooted at B0
        // reaches B2's client via B1 (tie-break), while the tree rooted at
        // B2 makes B2 the root (client local, no forwarding). From B1's
        // perspective the mapping for B2's client differs across trees:
        // downstream in tree(B0), absent in tree(B2).
        let mut b = NetworkBuilder::new();
        let ids = b.add_brokers(4);
        b.connect(ids[0], ids[1], 10.0).unwrap();
        b.connect(ids[1], ids[2], 10.0).unwrap();
        b.connect(ids[2], ids[3], 10.0).unwrap();
        b.connect(ids[3], ids[0], 10.0).unwrap();
        for &id in &ids {
            b.add_client(id).unwrap();
        }
        let net = b.build().unwrap();
        let forest = SpanningForest::compute_all(&net).unwrap();
        assert!(forest.len() >= 2);
        let space = LinkSpace::build(&net, &forest, ids[1]);
        assert!(
            space.class_count() >= 2,
            "cyclic topology should split virtual-link classes, got {}",
            space.class_count()
        );
        assert_eq!(space.width(), space.class_count() * space.link_count());
    }

    #[test]
    fn links_to_send_maps_positions_to_physical_links() {
        let (net, ids, clients) = star();
        let forest = SpanningForest::compute_all(&net).unwrap();
        let space = LinkSpace::build(&net, &forest, ids[1]);
        let leaf = space.leaf_vector(clients[3]);
        let links = space.links_to_send(&leaf);
        assert_eq!(links, vec![net.link_to_broker(ids[1], ids[3]).unwrap()]);
    }

    #[test]
    fn tree_id_display() {
        assert_eq!(TreeId(3).to_string(), "T3");
    }

    /// Square B0-B1-B2-B3-B0 with a client per broker (unit delays).
    fn square() -> (BrokerNetwork, Vec<BrokerId>) {
        let mut b = NetworkBuilder::new();
        let ids = b.add_brokers(4);
        b.connect(ids[0], ids[1], 10.0).unwrap();
        b.connect(ids[1], ids[2], 10.0).unwrap();
        b.connect(ids[2], ids[3], 10.0).unwrap();
        b.connect(ids[3], ids[0], 10.0).unwrap();
        for &id in &ids {
            b.add_client(id).unwrap();
        }
        (b.build().unwrap(), ids)
    }

    #[test]
    fn excluding_a_cycle_edge_reroutes_the_long_way() {
        let (net, ids) = square();
        let roots: Vec<BrokerId> = net.brokers().collect();
        let forest = SpanningForest::compute_excluding(&net, &roots, &[(ids[0], ids[1])]).unwrap();
        let tree = forest.tree(forest.tree_for_root(ids[0]).unwrap()).unwrap();
        // With 0-1 severed, B1 is reached the long way round: 0-3-2-1.
        assert_eq!(tree.parent(ids[1]), Some(ids[2]));
        assert_eq!(tree.parent(ids[2]), Some(ids[3]));
        assert_eq!(tree.parent(ids[3]), Some(ids[0]));
        for &b in &ids {
            assert!(tree.contains(b), "square stays connected without one edge");
        }
        // The reversed endpoint order must sever the same edge.
        let flipped = SpanningForest::compute_excluding(&net, &roots, &[(ids[1], ids[0])]).unwrap();
        let t2 = flipped
            .tree(flipped.tree_for_root(ids[0]).unwrap())
            .unwrap();
        assert_eq!(t2.parent(ids[1]), Some(ids[2]));
    }

    #[test]
    fn excluding_a_bridge_cuts_brokers_out_of_the_tree() {
        let (net, ids, _) = star();
        let roots: Vec<BrokerId> = net.brokers().collect();
        // 0-1 is a bridge of the star: B0 ends up alone.
        let forest = SpanningForest::compute_excluding(&net, &roots, &[(ids[0], ids[1])]).unwrap();
        let t1 = forest.tree(forest.tree_for_root(ids[1]).unwrap()).unwrap();
        assert!(!t1.contains(ids[0]));
        assert!(t1.contains(ids[2]));
        assert!(!t1.is_descendant(ids[0], ids[1]));
        assert!(!t1.is_descendant(ids[1], ids[0]));
        assert_eq!(t1.child_toward(ids[1], ids[0]), None);
        assert_eq!(t1.path_down(ids[1], ids[0]), None);
        let t0 = forest.tree(forest.tree_for_root(ids[0]).unwrap()).unwrap();
        assert!(t0.contains(ids[0]));
        assert!(!t0.contains(ids[1]) && !t0.contains(ids[2]) && !t0.contains(ids[3]));
        // A broker outside the tree's component routes nothing, and
        // reachable brokers never map destinations beyond the cut.
        let space0 = LinkSpace::build(&net, &forest, ids[0]);
        let tree1 = forest.tree_for_root(ids[1]).unwrap();
        assert_eq!(space0.init_mask(tree1).count_maybe(), 0);
        let space1 = LinkSpace::build(&net, &forest, ids[1]);
        let tree0 = forest.tree_for_root(ids[0]).unwrap();
        assert_eq!(space1.init_mask(tree0).count_maybe(), 0);
    }

    #[test]
    fn roots_are_sorted_and_tree_adjacency_tracks_the_forest() {
        let (net, ids, _) = star();
        let forest = SpanningForest::compute(&net, &[ids[2], ids[0]]).unwrap();
        assert_eq!(forest.roots(), vec![ids[0], ids[2]]);
        assert!(forest.tree_adjacent(ids[0], ids[1]));
        assert!(forest.tree_adjacent(ids[1], ids[0]));
        assert!(!forest.tree_adjacent(ids[0], ids[2]), "not an edge");
        let (net2, ids2) = square();
        let roots: Vec<BrokerId> = net2.brokers().collect();
        let full = SpanningForest::compute(&net2, &roots).unwrap();
        let cut = SpanningForest::compute_excluding(&net2, &roots, &[(ids2[0], ids2[1])]).unwrap();
        // The severed edge is tree-adjacent in the full forest but cannot
        // be in the repaired one; some surviving edge takes over.
        assert!(full.tree_adjacent(ids2[0], ids2[1]));
        assert!(!cut.tree_adjacent(ids2[0], ids2[1]));
        assert!(cut.tree_adjacent(ids2[1], ids2[2]));
    }

    /// Satellite: incremental recompute after k link removals must agree
    /// with a from-scratch `compute_all` over the surviving graph — tree
    /// for tree, parent for parent — and never orphan a reachable broker.
    mod repair_equivalence {
        use std::collections::HashSet;

        use proptest::prelude::*;

        use super::*;

        /// Random connected multigraph: a random tree plus chord edges.
        #[derive(Debug, Clone)]
        struct Graph {
            parents: Vec<usize>,
            chords: Vec<(usize, usize)>,
            /// Candidate removals, as indices into the edge list.
            removals: Vec<usize>,
        }

        fn graph_strategy() -> impl Strategy<Value = Graph> {
            (3usize..8).prop_flat_map(|n| {
                let parents = proptest::collection::vec(0usize..n, n - 1)
                    .prop_map(|raw| raw.iter().enumerate().map(|(i, &p)| p % (i + 1)).collect());
                let chords = proptest::collection::vec((0usize..n, 0usize..n), 1..4);
                let removals = proptest::collection::vec(0usize..(n + 3), 1..4);
                (parents, chords, removals).prop_map(|(parents, chords, removals)| Graph {
                    parents,
                    chords,
                    removals,
                })
            })
        }

        fn edge_list(g: &Graph) -> Vec<(usize, usize)> {
            let mut edges: Vec<(usize, usize)> = g
                .parents
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i + 1))
                .collect();
            for &(a, b) in &g.chords {
                let (a, b) = (a.min(b), a.max(b));
                if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                    edges.push((a, b));
                }
            }
            edges
        }

        fn connected(n: usize, edges: &[(usize, usize)]) -> bool {
            let mut seen = HashSet::from([0usize]);
            let mut stack = vec![0usize];
            while let Some(v) = stack.pop() {
                for &(a, b) in edges {
                    let next = if a == v {
                        b
                    } else if b == v {
                        a
                    } else {
                        continue;
                    };
                    if seen.insert(next) {
                        stack.push(next);
                    }
                }
            }
            seen.len() == n
        }

        fn build(n: usize, edges: &[(usize, usize)]) -> BrokerNetwork {
            let mut b = NetworkBuilder::new();
            let ids = b.add_brokers(n);
            for &(x, y) in edges {
                b.connect(ids[x], ids[y], 10.0).unwrap();
            }
            for &id in &ids {
                b.add_client(id).unwrap();
            }
            b.build().unwrap()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn incremental_recompute_matches_from_scratch(g in graph_strategy()) {
                let n = g.parents.len() + 1;
                let edges = edge_list(&g);
                // Greedily honor each removal candidate while the surviving
                // graph stays connected (NetworkBuilder rejects
                // disconnected graphs, and a connected survivor is the
                // interesting repair case anyway).
                let mut surviving = edges.clone();
                let mut removed: Vec<(usize, usize)> = Vec::new();
                for &r in &g.removals {
                    if surviving.len() < 2 {
                        break;
                    }
                    let idx = r % surviving.len();
                    let candidate: Vec<_> = surviving
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &e)| (i != idx).then_some(e))
                        .collect();
                    if connected(n, &candidate) {
                        removed.push(surviving[idx]);
                        surviving = candidate;
                    }
                }
                prop_assume!(!removed.is_empty());

                let full = build(n, &edges);
                let roots: Vec<BrokerId> = full.brokers().collect();
                let excluded: Vec<(BrokerId, BrokerId)> = removed
                    .iter()
                    .map(|&(a, b)| (BrokerId::new(a as u32), BrokerId::new(b as u32)))
                    .collect();
                let incremental =
                    SpanningForest::compute_excluding(&full, &roots, &excluded).unwrap();
                let scratch_net = build(n, &surviving);
                let scratch = SpanningForest::compute_all(&scratch_net).unwrap();

                prop_assert_eq!(incremental.len(), scratch.len());
                for &root in &roots {
                    let a = incremental
                        .tree(incremental.tree_for_root(root).unwrap())
                        .unwrap();
                    let b = scratch.tree(scratch.tree_for_root(root).unwrap()).unwrap();
                    prop_assert_eq!(a.root(), b.root());
                    for broker in full.brokers() {
                        prop_assert_eq!(a.parent(broker), b.parent(broker));
                        prop_assert_eq!(a.children(broker), b.children(broker));
                        // No orphans: the survivor is connected, so every
                        // broker must sit inside every repaired tree.
                        prop_assert!(a.contains(broker));
                    }
                }
            }
        }
    }
}
