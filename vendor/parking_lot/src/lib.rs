//! Offline vendored subset of [`parking_lot`](https://docs.rs/parking_lot).
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! non-poisoning API (`lock()` returns the guard directly, not a `Result`).
//! A panicked holder simply releases the lock, matching parking_lot's
//! semantics closely enough for this workspace.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Non-poisoning mutex.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable paired with [`Mutex`].
///
/// `std`'s condvar consumes and returns the guard while parking_lot's
/// borrows it mutably; the `ptr::read`/`ptr::write` pair bridges the two
/// shapes. Safety: the guard slot is read exactly once and unconditionally
/// rewritten, and the only panic `std`'s wait can raise (poisoning) is
/// mapped away before it propagates.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let owned = std::ptr::read(guard);
            let returned = self.0.wait(owned).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, returned);
        }
    }

    /// Blocks until notified or the timeout elapses; returns `true` if the
    /// wait timed out (parking_lot's `WaitTimeoutResult::timed_out`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        unsafe {
            let owned = std::ptr::read(guard);
            let (returned, result) = self
                .0
                .wait_timeout(owned, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, returned);
            result.timed_out()
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
