//! Scoped threads with crossbeam's `thread::scope` API shape.
//!
//! Spawned closures may borrow data from the caller's stack frame. The
//! scope guarantees every spawned thread has finished before `scope`
//! returns, which is what makes the lifetime extension below sound: the
//! borrowed environment outlives every thread that can observe it.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Result type of [`scope`]: `Err` carries the panic payload if the scope
/// closure itself panicked.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

#[derive(Default)]
struct Registry {
    latches: Mutex<Vec<Arc<Latch>>>,
}

#[derive(Default)]
struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn set(&self) {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Guard ensuring the latch fires even if the thread body panics.
struct LatchGuard(Arc<Latch>);

impl Drop for LatchGuard {
    fn drop(&mut self) {
        self.0.set();
    }
}

/// Handle for spawning threads inside a [`scope`].
pub struct Scope<'env> {
    registry: Arc<Registry>,
    _env: PhantomData<&'env mut &'env ()>,
}

/// Handle to a scoped thread; `join` returns the closure's result.
pub struct ScopedJoinHandle<'scope, T> {
    handle: std::thread::JoinHandle<()>,
    result: Arc<Mutex<Option<T>>>,
    _scope: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result, or the panic
    /// payload if it panicked.
    ///
    /// # Errors
    ///
    /// The thread's panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.handle.join().map(|()| {
            self.result
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("scoped thread finished without storing a result")
        })
    }
}

impl<'env> Scope<'env> {
    /// Spawns a thread that may borrow from the enclosing scope. The
    /// closure receives a `&Scope` (crossbeam allows nested spawns; so does
    /// this).
    pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'env>) -> T + Send + 'env,
        T: Send + 'env,
    {
        let latch = Arc::new(Latch::default());
        self.registry
            .latches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(latch.clone());

        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let registry = self.registry.clone();
        let result_slot = result.clone();
        let body: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let _guard = LatchGuard(latch);
            let nested = Scope {
                registry,
                _env: PhantomData,
            };
            let out = f(&nested);
            *result_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
        });
        // SAFETY: `scope` blocks until every latch registered here has
        // fired, so the 'env borrows captured by `body` strictly outlive
        // the thread executing it. The transmute only erases that lifetime.
        let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
        let handle = std::thread::spawn(body);
        ScopedJoinHandle {
            handle,
            result,
            _scope: PhantomData,
        }
    }
}

/// Runs `f` with a [`Scope`], joining all still-running scoped threads
/// before returning.
///
/// # Errors
///
/// Returns the panic payload if `f` itself panicked (after all spawned
/// threads have still been joined).
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        registry: Arc::new(Registry::default()),
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // Wait for every thread ever spawned in this scope, including ones
    // spawned while we were already waiting.
    loop {
        let latch = scope
            .registry
            .latches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match latch {
            Some(l) => l.wait(),
            None => break,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn borrows_stack_data() {
        let data = [1, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn unjoined_threads_finish_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_surfaces_panic() {
        scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
