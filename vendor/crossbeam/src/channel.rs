//! MPMC channels with crossbeam's API shape.
//!
//! A single `Mutex<VecDeque>` plus two condvars. Not lock-free like the real
//! crate, but semantically faithful: multiple producers, multiple consumers,
//! bounded backpressure, and disconnect-on-last-drop on either side.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Error returned by [`Sender::send`] when all receivers are gone; yields
/// the unsent value back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Full(_) => f.write_str("Full(..)"),
            Self::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// The sending half; cheap to clone.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; cheap to clone (MPMC — clones share the queue).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a channel with unlimited buffering.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` in-flight messages; sends block
/// once full. `cap == 0` is treated as capacity 1 (the real crate offers a
/// rendezvous channel; linkcast never uses capacity zero).
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message if all receivers have been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .chan
                        .not_full
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] if at capacity, [`TrySendError::Disconnected`]
    /// if all receivers are gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.chan.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Self {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is empty and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives with a deadline.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] once empty with no senders.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if nothing is buffered,
    /// [`TryRecvError::Disconnected`] once empty with no senders.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocking iterator over messages; ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator draining currently buffered messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }

    /// Number of messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Self {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.chan.not_full.notify_all();
        }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Non-blocking iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let h = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
