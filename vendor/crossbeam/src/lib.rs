//! Offline vendored subset of [`crossbeam`](https://docs.rs/crossbeam).
//!
//! The build container has no crates.io access, so the workspace patches
//! `crossbeam` to this implementation. Two modules are provided, matching
//! the API surface linkcast uses:
//!
//! - [`channel`]: MPMC channels (`unbounded`/`bounded`) with cloneable
//!   senders *and* receivers, blocking/timed/non-blocking receives, and
//!   disconnect semantics.
//! - [`thread`]: `scope`/`spawn` scoped threads whose closures may borrow
//!   the enclosing stack frame.

pub mod channel;
pub mod thread;
