//! `any::<T>()` — full-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Generates values across the entire domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy backing [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FullDomain<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;
            fn arbitrary() -> Self::Strategy {
                FullDomain(std::marker::PhantomData)
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullDomain<bool> {
    type Value = bool;
    fn new_value(&self, runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullDomain<bool>;
    fn arbitrary() -> Self::Strategy {
        FullDomain(std::marker::PhantomData)
    }
}
