//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, runner: &mut TestRunner) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            self.lo + runner.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = self.size.sample(runner);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}
