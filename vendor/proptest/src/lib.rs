//! Offline vendored subset of [`proptest`](https://docs.rs/proptest).
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this implementation. It reproduces the API surface the
//! linkcast test suite uses — the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`boxed`, range / tuple / regex-string
//! strategies, `collection::vec`, `array::uniform3/4`, `option::of`,
//! `bool::ANY`, `any::<T>()`, the `proptest!`, `prop_oneof!`,
//! `prop_assert*!` and `prop_assume!` macros, and `ProptestConfig`.
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! **not shrunk** — the failing input is printed as generated. Seeds are
//! deterministic per test name (override with `PROPTEST_SEED`), and case
//! counts honour `PROPTEST_CASES`.

pub mod arbitrary;
pub mod array;
pub mod bool;
pub mod collection;
pub mod num;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec(..)` style paths work.
    pub mod prop {
        pub use crate::array;
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each `fn name(bindings in strategies) { body }`
/// expands to a `#[test]` that draws `config.cases` random inputs and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            for _case in 0..runner.cases() {
                let values =
                    ($($crate::strategy::Strategy::new_value(&$strat, &mut runner),)+);
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let ($($pat,)+) = values;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            _case + 1,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

/// Weighted or unweighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (does not count as a failure) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
