//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Fair coin strategy (`proptest::bool::ANY`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BoolStrategy;

/// Fair coin.
pub const ANY: BoolStrategy = BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn new_value(&self, runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}
