//! The [`Strategy`] trait and its combinators.

use std::sync::Arc;

use crate::test_runner::TestRunner;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, runner: &mut TestRunner) -> T::Value {
        let mid = self.inner.new_value(runner);
        (self.f)(mid).new_value(runner)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.dyn_new_value(runner)
    }
}

/// Object-safe core of [`Strategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

/// Weighted choice between strategies of a common value type; built by
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let mut pick = runner.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.new_value(runner);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
