//! String strategies from regex-like patterns.
//!
//! Upstream proptest treats `&str` as a full regex; this subset supports
//! the patterns the linkcast suite uses:
//!
//! - `[class]{m,n}` — a character class of literals and `a-z` ranges,
//!   repeated `m..=n` times (e.g. `"[a-zA-Z0-9 ]{0,12}"`).
//! - `\PC{m,n}` — any non-control character, repeated `m..=n` times.
//!
//! Unsupported patterns panic with a clear message so the next maintainer
//! knows to extend this parser rather than receiving garbage strings.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, runner: &mut TestRunner) -> String {
        let spec = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = spec.min + runner.below((spec.max - spec.min + 1) as u64) as usize;
        (0..len)
            .map(|_| spec.alphabet[runner.below(spec.alphabet.len() as u64) as usize])
            .collect()
    }
}

struct PatternSpec {
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Option<PatternSpec> {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        // Non-control characters: printable ASCII plus a few multibyte
        // code points to exercise UTF-8 handling.
        let mut alphabet: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
        alphabet.extend(['é', 'λ', '→', '日', '\u{00A0}']);
        (alphabet, rest)
    } else if let Some(body) = pattern.strip_prefix('[') {
        let end = body.find(']')?;
        (parse_class(&body[..end])?, &body[end + 1..])
    } else {
        return None;
    };

    let (min, max) = parse_repeat(rest)?;
    if class.is_empty() || max < min {
        return None;
    }
    Some(PatternSpec {
        alphabet: class,
        min,
        max,
    })
}

fn parse_class(body: &str) -> Option<Vec<char>> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            out.extend(lo..=hi);
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    Some(out)
}

fn parse_repeat(rest: &str) -> Option<(usize, usize)> {
    if rest.is_empty() {
        return Some((1, 1));
    }
    let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}
