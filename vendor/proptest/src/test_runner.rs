//! Test execution state: configuration, RNG, and case outcomes.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Outcome of a single generated case (the `Err` side).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; not a failure.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Failure with a reason (upstream's constructor shape).
    pub fn fail(reason: impl ToString) -> Self {
        Self::Fail(reason.to_string())
    }

    /// Discard with a reason.
    pub fn reject(reason: impl ToString) -> Self {
        Self::Reject(reason.to_string())
    }
}

/// Per-test driver: owns the RNG strategies draw from.
pub struct TestRunner {
    config: ProptestConfig,
    state: [u64; 4],
}

impl TestRunner {
    /// Creates a runner whose seed is derived from the test name (so every
    /// test sees a distinct but reproducible stream). `PROPTEST_SEED`
    /// overrides the base seed.
    #[must_use]
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        let mut h: u64 = base;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        // Expand with SplitMix64 into a xoshiro256++ state.
        let mut sm = h;
        let mut state = [0u64; 4];
        for w in &mut state {
            *w = splitmix64(&mut sm);
        }
        Self { config, state }
    }

    /// Number of cases this runner will execute.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        // Multiply-shift with rejection (Lemire).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
