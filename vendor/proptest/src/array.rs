//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Generates `[T; N]` with every element drawn from the same strategy.
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, runner: &mut TestRunner) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.new_value(runner))
    }
}

macro_rules! uniform_fn {
    ($name:ident, $n:literal) => {
        /// Generates a fixed-size array from one element strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    };
}

uniform_fn!(uniform1, 1);
uniform_fn!(uniform2, 2);
uniform_fn!(uniform3, 3);
uniform_fn!(uniform4, 4);
uniform_fn!(uniform5, 5);
uniform_fn!(uniform8, 8);
