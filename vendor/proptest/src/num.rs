//! Numeric range strategies: `lo..hi` and `lo..=hi` generate uniformly.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = runner.below(span);
                (self.start as i128 + i128::from(v)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return runner.next_u64() as $t;
                }
                let v = runner.below(span as u64);
                (lo as i128 + i128::from(v)) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
