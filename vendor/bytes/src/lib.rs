//! Offline vendored subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! patches `bytes` to this implementation. It provides the exact API surface
//! linkcast uses — [`Bytes`] (cheaply cloneable, sliceable shared buffer),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] cursor traits
//! with little-endian integer accessors.
//!
//! `Bytes` is an `Arc<[u8]>` plus a `(start, end)` window, so `clone()` and
//! `slice()` are O(1) and never copy the payload — the property the broker's
//! encode-once multicast fan-out relies on.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, sliceable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<[u8]>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` borrowing a static slice (copied once here; the real
    /// crate borrows, but the observable behaviour is identical).
    #[must_use]
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// Copies a slice into a new `Bytes`.
    #[must_use]
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same allocation (O(1), no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off the first `at` bytes, leaving the remainder in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.start..self.end],
            None => &[],
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Some(Arc::from(v.into_boxed_slice())),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer used to build frames before freezing them.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Whether all bytes have been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Converts the unread remainder into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from(self.buf)
    }

    /// Splits off the first `at` unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.buf[self.read..self.read + at].to_vec();
        self.read += at;
        Self { buf: head, read: 0 }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.read = 0;
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read cursor over a byte source; all integer accessors are little-endian
/// (`*_le`) because that is the only endianness the linkcast codec uses.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Current contiguous unread chunk.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out of the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.read += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor; little-endian counterparts of [`Buf`].
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 3);
        b.put_i64_le(-42);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn split_to_consumes_prefix() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }
}
