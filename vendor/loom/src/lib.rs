//! A vendored, API-compatible **subset** of [`loom`](https://docs.rs/loom).
//!
//! The real loom exhaustively explores thread interleavings with DPOR
//! model checking. This build environment has no crates.io access, so this
//! facade keeps loom's API shape (`loom::model`, `loom::thread`,
//! `loom::sync`) but explores schedules by *randomized yield injection*:
//! every synchronization operation (lock acquisition, atomic access) may
//! yield the OS thread, and [`model`] re-runs the closure many times with a
//! different deterministic seed per iteration (`LOOM_ITERS` iterations,
//! default 64).
//!
//! That makes these tests probabilistic schedule fuzzers rather than
//! proofs: they reliably catch ordering bugs whose windows open under
//! perturbation (lost wakeups, check-then-act races), while staying honest
//! about not enumerating every interleaving. Swapping in the real loom
//! later requires no source changes in the models.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

/// Global per-iteration seed; mixed into each thread's local RNG.
static MODEL_SEED: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);

thread_local! {
    static LOCAL_RNG: Cell<u64> = const { Cell::new(0) };
}

fn maybe_yield() {
    let mixed = LOCAL_RNG.with(|s| {
        let mut x = s.get();
        if x == 0 {
            // Lazily derive a per-thread stream from the iteration seed.
            x = MODEL_SEED.load(StdOrdering::Relaxed) ^ 0x5851F42D4C957F2D;
        }
        // xorshift64*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.set(x);
        x.wrapping_mul(0x2545F4914F6CDD1D)
    });
    // Yield at roughly half of all sync points; occasionally sleep to
    // widen race windows past a bare `yield_now`.
    match mixed % 8 {
        0..=2 => std::thread::yield_now(),
        3 => std::thread::sleep(std::time::Duration::from_micros(mixed % 50)),
        _ => {}
    }
}

/// Runs `f` under the schedule fuzzer: `LOOM_ITERS` iterations (default
/// 64), each with a fresh deterministic seed that perturbs where threads
/// yield. Panics from `f` (failed assertions in the model) propagate.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for i in 0..iters {
        MODEL_SEED.store(
            (i + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1,
            StdOrdering::Relaxed,
        );
        LOCAL_RNG.with(|s| s.set(0));
        f();
    }
}

/// Thread spawning and scheduling hooks, mirroring `loom::thread`.
pub mod thread {
    /// Handle to a model thread (wraps [`std::thread::JoinHandle`]).
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawns a model thread; the child starts at a perturbed point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle(std::thread::spawn(move || {
            super::LOCAL_RNG.with(|s| s.set(0));
            super::maybe_yield();
            f()
        }))
    }

    /// Explicit scheduling point.
    pub fn yield_now() {
        super::maybe_yield();
    }
}

/// Synchronization primitives with schedule points, mirroring `loom::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// A mutex whose acquisition is a schedule point. Poisoning is
    /// swallowed (loom has no poisoning either): a panicked model thread
    /// already fails the test.
    pub struct Mutex<T>(std::sync::Mutex<T>);

    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Creates the mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Acquires the mutex, yielding around the acquisition so lock
        /// handoff order varies between iterations.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            super::maybe_yield();
            let guard = self
                .0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            super::maybe_yield();
            guard
        }

        /// Attempts the lock without blocking (still a schedule point).
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            super::maybe_yield();
            match self.0.try_lock() {
                Ok(g) => Some(g),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }
    }

    /// Atomics whose every access is a schedule point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// Model `AtomicBool`: every access is a schedule point.
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates the atomic.
            pub fn new(v: bool) -> AtomicBool {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> bool {
                crate::maybe_yield();
                self.0.load(order)
            }

            /// Stores a value.
            pub fn store(&self, v: bool, order: Ordering) {
                crate::maybe_yield();
                self.0.store(v, order);
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                crate::maybe_yield();
                self.0.swap(v, order)
            }
        }

        /// Model `AtomicUsize`: every access is a schedule point.
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            /// Creates the atomic.
            pub fn new(v: usize) -> AtomicUsize {
                AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> usize {
                crate::maybe_yield();
                self.0.load(order)
            }

            /// Stores a value.
            pub fn store(&self, v: usize, order: Ordering) {
                crate::maybe_yield();
                self.0.store(v, order);
            }

            /// Adds, returning the previous value.
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                crate::maybe_yield();
                self.0.fetch_add(v, order)
            }
        }

        /// Model `AtomicU64`: every access is a schedule point.
        pub struct AtomicU64(std::sync::atomic::AtomicU64);

        impl AtomicU64 {
            /// Creates the atomic.
            pub fn new(v: u64) -> AtomicU64 {
                AtomicU64(std::sync::atomic::AtomicU64::new(v))
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> u64 {
                crate::maybe_yield();
                self.0.load(order)
            }

            /// Stores a value.
            pub fn store(&self, v: u64, order: Ordering) {
                crate::maybe_yield();
                self.0.store(v, order);
            }

            /// Adds, returning the previous value.
            pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
                crate::maybe_yield();
                self.0.fetch_add(v, order)
            }
        }
    }
}

/// Mirrors `loom::hint`.
pub mod hint {
    /// Spin-loop hint; also a schedule point in the model.
    pub fn spin_loop() {
        super::maybe_yield();
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_and_threads_join() {
        let ran = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let r = std::sync::Arc::clone(&ran);
        std::env::set_var("LOOM_ITERS", "4");
        super::model(move || {
            let n = crate::sync::Arc::new(crate::sync::atomic::AtomicUsize::new(0));
            let n2 = crate::sync::Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                n2.fetch_add(1, crate::sync::atomic::Ordering::SeqCst)
            });
            n.fetch_add(1, crate::sync::atomic::Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(crate::sync::atomic::Ordering::SeqCst), 2);
            r.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 4);
    }
}
