//! Offline vendored subset of [`rand`](https://docs.rs/rand) 0.9.
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this implementation. It covers the API linkcast uses:
//! `StdRng` (a xoshiro256++ generator — high quality, not the real crate's
//! ChaCha12, so seeded streams differ from upstream `rand` but are stable
//! within this workspace), `SeedableRng::{seed_from_u64, from_seed}`, the
//! 0.9-era `Rng` methods (`random`, `random_range`, `random_bool`), and
//! `seq::SliceRandom::shuffle`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` by expanding it with SplitMix64 (the same
    /// expansion upstream rand uses for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain via [`Rng::random`].
pub trait StandardUniform {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval; the single generic
/// [`SampleRange`] impl below keys range-literal type inference off the
/// target type, exactly like upstream rand (so `v[rng.random_range(0..4)]`
/// infers `usize`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_interval(rng, lo, hi, true)
    }
}

/// Uniform draw from `[0, span)` by widening rejection sampling (span ≤
/// 2^64 always holds for the integer types above; a single 64-bit word per
/// draw with multiply-shift debiasing).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    if span > u64::MAX as u128 {
        return rng.next_u64() as u128; // span == 2^64: the full 64-bit domain
    }
    // Lemire's multiply-shift with rejection on the low word.
    let span64 = span as u64;
    let threshold = span64.wrapping_neg() % span64;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span64 as u128);
        if (m as u64) >= threshold {
            return m >> 64;
        }
    }
}

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    /// Deterministic per seed; streams differ from upstream rand's ChaCha12
    /// `StdRng`, which no test in this workspace depends on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias: the vendored small RNG is the same generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Shuffling and element selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// rand 0.9 splits `choose` into `IndexedRandom`; alias for
    /// compatibility.
    pub use self::SliceRandom as IndexedRandom;
}

/// A fresh, OS-independent generator seeded from the system clock and a
/// process-wide counter (upstream's `rand::rng()`); prefer explicit
/// [`SeedableRng::seed_from_u64`] seeding in tests.
#[must_use]
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0xDEAD_BEEF);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ unique.rotate_left(32))
}

/// Convenience free function mirroring `rand::random`.
#[must_use]
pub fn random<T: StandardUniform>() -> T {
    rng().random()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.random_range(0..=3u32);
            assert!(w <= 3);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
