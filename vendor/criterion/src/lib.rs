//! Offline vendored subset of [`criterion`](https://docs.rs/criterion).
//!
//! The build container has no crates.io access, so the workspace patches
//! `criterion` to this implementation: a small wall-clock harness with
//! criterion's API shape (`benchmark_group`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `criterion_group!`/`criterion_main!`).
//! There is no statistical regression machinery; each benchmark reports
//! the median of `sample_size` samples, where each sample times a batch of
//! iterations sized to fill `measurement_time / sample_size`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.into_benchmark_id(), &mut f);
        group.finish();
        self
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A `name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] (accepts `&str` and `String` too).
pub trait IntoBenchmarkId {
    /// Converts to the label type.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// A group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), &mut f);
        self
    }

    /// Runs one benchmark with an input handle.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_benchmark_id(), &mut |b: &mut Bencher| {
            b_input(&mut f, b, input)
        });
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id.label
        } else {
            format!("{}/{}", self.name, id.label)
        };
        let ns = bencher.median_ns;
        let mut line = format!("{label:<50} time: [{}]", fmt_time(ns));
        if let Some(t) = self.throughput {
            let (units, suffix) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if ns > 0.0 {
                let rate = units / (ns * 1e-9);
                line.push_str(&format!("  thrpt: [{rate:.0} {suffix}]"));
            }
        }
        println!("{line}");
    }
}

fn b_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(f: &mut F, b: &mut Bencher, input: &I) {
    f(b, input);
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times repeated calls of `routine`, storing the median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);

        // Size each sample's batch to fill measurement_time / sample_size.
        let per_sample_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((per_sample_ns / est_ns).round() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }

    /// The measured median, in nanoseconds per iteration (extension used
    /// by linkcast's own bench binaries to export JSON baselines).
    #[must_use]
    pub fn median_ns(&self) -> f64 {
        self.median_ns
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, invoking each group (extra CLI args from `cargo bench`
/// are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
